"""Shared report telemetry: one JSON dialect, one report base class.

Before this module every report in the repo hand-rolled its own
serialization (or had none): ``SweepReport`` carried private
``to_json``/``from_json`` helpers, ``FleetReport`` and ``ChaosReport``
only rendered text, and the analytical reports were plain dataclasses.
This module is the single place those conventions live:

* **The JSON dialect** — stable key order, two-space indent, trailing
  newline, strict JSON (``allow_nan=False``).  Non-finite floats are
  encoded losslessly: ``nan`` → ``null``, ``inf`` → ``"Infinity"``,
  ``-inf`` → ``"-Infinity"`` (:func:`null_specials` on the way out,
  :func:`revive_float` / :func:`revive_floats` on the way in).
* **Strict loading** — :func:`require_keys` rejects unknown keys with a
  clear error instead of silently dropping them, so a typo'd artifact
  or a version skew fails loudly at load time.
* **:class:`ReportBase`** — uniform ``to_json``/``from_json``/
  ``write``/``read``, uniform metric naming (``<kind>.<metric>``,
  snake_case) via :meth:`ReportBase.metrics`, percentile summaries via
  :func:`percentile_summary`, and generic :meth:`ReportBase.diff` plus
  accumulate-style :meth:`ReportBase.merge`.  Every subclass registers
  its ``report_kind`` automatically, so :func:`report_from_json` can
  revive *any* archived report without knowing its type up front.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import tempfile
from typing import Any, ClassVar, Iterable, Mapping

from .errors import FormatError, ReproError

#: Bumped when the shared payload envelope changes shape.
REPORT_SCHEMA_VERSION = 1

#: The percentile levels every report summary exposes, and their keys.
SUMMARY_PERCENTILES = (50.0, 90.0, 100.0)

#: report_kind -> ReportBase subclass, filled by ``__init_subclass__``.
_REPORT_KINDS: dict[str, type["ReportBase"]] = {}


# -- the JSON dialect ----------------------------------------------------------


def dump_json(payload: Mapping[str, Any]) -> str:
    """Serialize a payload in the repo's one diff-friendly JSON dialect."""
    # Specials were encoded by null_specials; allow_nan=False guards the
    # strict-JSON promise against future fields sneaking raw NaN in.
    return json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"


def load_json(text: str) -> dict:
    """Parse JSON text into a payload dict, with a clear failure mode."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise FormatError(f"report is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise FormatError(
            f"report payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def null_specials(value: Any) -> Any:
    """Recursively encode non-finite floats for strict JSON.

    ``nan`` → ``None`` and ``±inf`` → ``"Infinity"``/``"-Infinity"``;
    containers are rebuilt (tuples become lists, as JSON demands).
    """
    if isinstance(value, float):
        if math.isnan(value):
            return None
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        return value
    if isinstance(value, dict):
        return {key: null_specials(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [null_specials(item) for item in value]
    return value


def revive_float(value: Any) -> float:
    """Decode one float slot written by :func:`null_specials`."""
    if value is None:
        return math.nan
    if value == "Infinity":
        return math.inf
    if value == "-Infinity":
        return -math.inf
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FormatError(f"expected a float slot, got {value!r}")
    return float(value)


def revive_floats(row: Mapping[str, Any], float_fields: Iterable[str]) -> dict:
    """Copy *row* with the named fields decoded via :func:`revive_float`.

    Fields absent from *row* are left absent — pair with
    :func:`require_keys` for presence checking.
    """
    revived = dict(row)
    for name in float_fields:
        if name in revived:
            revived[name] = revive_float(revived[name])
    return revived


def atomic_write_text(path: str | pathlib.Path, text: str) -> pathlib.Path:
    """Write *text* to *path* atomically: temp file in the same
    directory, flush + fsync, then ``os.replace``.

    A crash (or SIGKILL) mid-write therefore leaves either the old
    artifact or the new one on disk — never a torn JSON document.  The
    temp file lives beside the target so the rename stays on one
    filesystem, which is what makes the replace atomic.
    """
    target = pathlib.Path(path)
    handle, temp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w") as stream:
            stream.write(text)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return target


def require_keys(
    row: Mapping[str, Any],
    required: Iterable[str],
    optional: Iterable[str] = (),
    context: str = "payload",
) -> None:
    """Strict key validation: reject unknown and missing keys loudly."""
    have = set(row)
    want = set(required)
    allowed = want | set(optional)
    unknown = have - allowed
    if unknown:
        raise FormatError(
            f"{context}: unknown key(s) {sorted(unknown)}; "
            f"expected {sorted(allowed)}"
        )
    missing = want - have
    if missing:
        raise FormatError(f"{context}: missing required key(s) {sorted(missing)}")


# -- tagged envelopes ----------------------------------------------------------
#
# Reports and scenarios both archive as tag-dispatched JSON objects
# (``{"report": kind, "version": N, ...}`` / ``{"scenario": kind,
# ...}``).  These two helpers are the single implementation of that
# envelope shape; the tag key is the only difference between the two
# planes.


def build_envelope(
    tag_key: str, tag: str, version: int, body: Mapping[str, Any]
) -> dict:
    """Wrap a payload body in its kind/version envelope (strictly)."""
    for reserved in (tag_key, "version"):
        if reserved in body:
            raise FormatError(
                f"{tag} payload may not use the reserved key {reserved!r}"
            )
    return {tag_key: tag, "version": version, **body}


def split_envelope(
    payload: Mapping[str, Any], tag_key: str, supported_version: int
) -> tuple[str | None, dict]:
    """Pop the tag and version off an envelope; gate the version."""
    body = dict(payload)
    tag = body.pop(tag_key, None)
    version = body.pop("version", supported_version)
    if version != supported_version:
        raise FormatError(
            f"{tag_key} schema version {version!r} is not supported "
            f"(this build reads version {supported_version})"
        )
    return tag, body


# -- percentile summaries ------------------------------------------------------


def percentile(values: list[float], q: float) -> float:
    """Ceiling-index percentile — the repo's tail convention: small
    populations report their worst value rather than interpolating the
    tail away.  ``nan`` on an empty population."""
    if not values:
        return math.nan
    ranked = sorted(values)
    return ranked[math.ceil(q / 100.0 * (len(ranked) - 1))]


def percentile_summary(values: Iterable[float]) -> dict[str, float]:
    """The uniform ``{"p50", "p90", "p100", "mean"}`` summary block.

    ``nan`` observations are skipped (metrics can be undefined for some
    runs); an all-``nan`` or empty population summarizes to ``nan``.
    """
    finite = [v for v in values if not math.isnan(v)]
    summary = {f"p{q:.0f}": percentile(finite, q) for q in SUMMARY_PERCENTILES}
    summary["mean"] = sum(finite) / len(finite) if finite else math.nan
    return summary


# -- the report base -----------------------------------------------------------


class ReportBase:
    """Uniform telemetry surface every report subclass speaks.

    Subclasses set ``report_kind`` (a short snake_case noun — it
    prefixes metric names and tags the JSON envelope) and implement
    :meth:`payload` / :meth:`from_payload`.  Everything else — the
    envelope, files, metric diffs — is shared here.
    """

    #: Short kind tag; subclasses must override.
    report_kind: ClassVar[str] = ""

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        kind = cls.__dict__.get("report_kind", "")
        if kind:
            existing = _REPORT_KINDS.get(kind)
            if existing is not None and existing is not cls:
                raise ReproError(
                    f"report kind {kind!r} already registered by "
                    f"{existing.__name__}"
                )
            _REPORT_KINDS[kind] = cls

    # -- subclass hooks --------------------------------------------------------

    def payload(self) -> dict:
        """JSON-ready body (before special-float encoding)."""
        raise NotImplementedError

    @classmethod
    def from_payload(cls, payload: dict) -> "ReportBase":
        """Rebuild from a body produced by :meth:`payload`."""
        raise NotImplementedError

    def metrics(self) -> dict[str, float]:
        """Flat summary metrics under uniform ``<kind>.<name>`` keys."""
        return {}

    # -- the shared envelope ---------------------------------------------------

    def envelope(self) -> dict:
        """The kind-tagged payload (before special-float encoding).

        This is the nesting unit: composite reports embed child
        reports as envelopes so one :func:`null_specials` pass at the
        top serializes the whole tree.
        """
        return build_envelope(
            "report", self.report_kind, REPORT_SCHEMA_VERSION, self.payload()
        )

    def to_json(self) -> str:
        """The report as one stable, strict-JSON document."""
        return dump_json(null_specials(self.envelope()))

    @classmethod
    def from_envelope(cls, payload: dict) -> "ReportBase":
        """Rebuild from a (possibly JSON-decoded) envelope dict.

        Called on a concrete subclass it enforces the kind tag; called
        on :class:`ReportBase` itself it dispatches on it.
        """
        kind, payload = split_envelope(payload, "report", REPORT_SCHEMA_VERSION)
        if cls is ReportBase:
            target = _REPORT_KINDS.get(kind)
            import_errors: list[str] = []
            if target is None:
                import_errors = _import_builtin_report_modules()
                target = _REPORT_KINDS.get(kind)
            if target is None:
                detail = (
                    f"; module imports failed: {'; '.join(import_errors)}"
                    if import_errors
                    else ""
                )
                raise FormatError(
                    f"unknown report kind {kind!r}; known: "
                    f"{sorted(_REPORT_KINDS)}{detail}"
                )
            return target.from_payload(payload)
        if kind is not None and kind != cls.report_kind:
            raise FormatError(
                f"expected a {cls.report_kind!r} report, got {kind!r}"
            )
        return cls.from_payload(payload)

    @classmethod
    def from_json(cls, text: str) -> "ReportBase":
        """Rebuild a report from :meth:`to_json` output."""
        return cls.from_envelope(load_json(text))

    def write(self, path: str | pathlib.Path) -> pathlib.Path:
        """Persist the JSON artifact atomically; returns the path
        written.  See :func:`atomic_write_text` — a crash mid-write can
        never leave a torn artifact."""
        return atomic_write_text(path, self.to_json())

    @classmethod
    def read(cls, path: str | pathlib.Path) -> "ReportBase":
        """Load a report previously :meth:`write`-ten."""
        return cls.from_json(pathlib.Path(path).read_text())

    # -- comparison and combination --------------------------------------------

    def diff(self, other: "ReportBase") -> dict[str, dict[str, float]]:
        """Metric-by-metric comparison against a same-kind report.

        Returns ``{metric: {"base", "other", "delta"}}`` over the union
        of both reports' metrics (one-sided metrics diff against
        ``nan``).
        """
        if self.report_kind != other.report_kind:
            raise ReproError(
                f"cannot diff a {self.report_kind!r} report against a "
                f"{other.report_kind!r} report"
            )
        mine = self.metrics()
        theirs = other.metrics()
        out: dict[str, dict[str, float]] = {}
        for name in sorted(set(mine) | set(theirs)):
            base = mine.get(name, math.nan)
            new = theirs.get(name, math.nan)
            out[name] = {"base": base, "other": new, "delta": new - base}
        return out

    def merge(self, other: "ReportBase") -> "ReportBase":
        """Accumulate *other* into this report and return it.

        Merge is accumulate-style (mutates and returns ``self``) so hot
        paths can fold many partial reports without reallocating.  Only
        kinds with a meaningful combination override it.
        """
        raise ReproError(
            f"{self.report_kind or type(self).__name__} reports do not merge"
        )

    def describe(self) -> str:
        """Default human summary: the uniform metric block."""
        lines = [f"{self.report_kind} report"]
        for name, value in self.metrics().items():
            lines.append(f"  {name} = {value:g}")
        return "\n".join(lines)


def _import_builtin_report_modules() -> list[str]:
    """Register the repo's report kinds on first dispatch.

    Registration rides on class creation (``__init_subclass__``), so a
    process that never imported, say, the chaos plane cannot revive a
    chaos artifact.  Importing the defining modules lazily — only when
    an unknown kind is actually requested — keeps :mod:`repro.common`
    import-light while making ``report_from_json`` work anywhere.

    Returns one line per module that failed to import, so the caller's
    unknown-kind error points at a broken install instead of blaming
    the artifact.
    """
    import importlib

    failures: list[str] = []
    for module in (
        "repro.chaos.report",
        "repro.dpp.simulation",
        "repro.experiments.report",
        "repro.experiments.runner",
        "repro.fleet.report",
        "repro.serving.report",
        "repro.telemetry.metrics",
        "repro.telemetry.tracer",
        "repro.trainer.stalls",
        "repro.transforms.cost",
    ):
        try:
            importlib.import_module(module)
        except ImportError as error:  # pragma: no cover - partial installs
            failures.append(f"{module} ({error})")
    return failures


def report_kinds() -> dict[str, type[ReportBase]]:
    """The registered kind → class map (a copy; read-only use)."""
    return dict(_REPORT_KINDS)


def report_from_json(text: str) -> ReportBase:
    """Revive any registered report kind from its JSON document."""
    return ReportBase.from_json(text)
