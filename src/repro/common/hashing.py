"""Process-stable identity hashing.

Python's builtin ``hash()`` is salted per interpreter (PYTHONHASHSEED),
so any identity derived from it — sampled split sets, request-ID
ranges — silently changes across process restarts and replicas.  That
breaks the paper's recovery story: a restored master must agree
byte-for-byte with the checkpoint source (Section 3.2.1), and serving
request IDs must join deterministically across reruns.

:func:`stable_hash` is a 64-bit FNV-1a over a type-tagged encoding of
its arguments: the same inputs produce the same value in every process,
on every platform, under every hash seed.  Use it for *identity* —
sampling, sharding, ID derivation — never for security.
"""

from __future__ import annotations

import struct

_FNV64_OFFSET = 0xCBF29CE484222325
_FNV64_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def fnv1a_64(data: bytes, h: int = _FNV64_OFFSET) -> int:
    """64-bit FNV-1a of *data*, optionally chained from a prior state."""
    for byte in data:
        h = ((h ^ byte) * _FNV64_PRIME) & _MASK64
    return h


def _encode(part) -> bytes:
    """Type-tagged canonical bytes for one hashable part.

    Tags keep distinct types distinct (``1`` vs ``"1"`` vs ``1.0``) and
    nested tuples unambiguous (length-prefixed).
    """
    if isinstance(part, bytes):
        return b"b" + len(part).to_bytes(4, "big") + part
    if isinstance(part, str):
        raw = part.encode("utf-8")
        return b"s" + len(raw).to_bytes(4, "big") + raw
    if isinstance(part, bool):  # before int: bool subclasses int
        return b"t" if part else b"f"
    if isinstance(part, int):
        raw = part.to_bytes((part.bit_length() + 8) // 8 + 1, "big", signed=True)
        return b"i" + len(raw).to_bytes(4, "big") + raw
    if isinstance(part, float):
        return b"d" + struct.pack(">d", part)
    if part is None:
        return b"n"
    if isinstance(part, (tuple, list)):
        body = b"".join(_encode(item) for item in part)
        return b"(" + len(part).to_bytes(4, "big") + body
    raise TypeError(f"stable_hash cannot encode {type(part).__name__}")


def _avalanche(h: int) -> int:
    """murmur3's 64-bit finalizer: FNV alone leaves the high bits of
    near-identical short inputs correlated, which would bias sampling
    decisions; this mixes every input bit into every output bit."""
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & _MASK64
    h ^= h >> 33
    h = (h * 0xC4CEB9FE1A85EC53) & _MASK64
    h ^= h >> 33
    return h


def stable_hash(*parts) -> int:
    """Process-stable 64-bit hash of str/bytes/int/float/bool/None/tuples.

    Multiple arguments hash as the equivalent tuple:
    ``stable_hash(a, b) == stable_hash((a, b))``.
    """
    part = parts[0] if len(parts) == 1 else parts
    return _avalanche(fnv1a_64(_encode(part)))


def stable_fraction(*parts) -> float:
    """Map identity onto [0, 1) uniformly and process-stably.

    Uses the top 53 bits so every distinct double in [0, 1) is
    reachable; the natural primitive for sampling decisions
    (``stable_fraction(key) < rate``).
    """
    return (stable_hash(*parts) >> 11) / float(1 << 53)
