"""Shared utilities: units, statistics, simulation kernel, resources."""

from .errors import (
    CapacityError,
    ConfigError,
    DppError,
    FormatError,
    ReproError,
    SchedulingError,
    SchemaError,
    StorageError,
    TransformError,
    WorkerFailure,
)
from .hashing import fnv1a_64, stable_fraction, stable_hash
from .resources import HostModel, ResourceSpec, ResourceUsage, UtilizationReport
from .simclock import EventHandle, SimClock
from .stats import (
    CdfPoint,
    DistributionSummary,
    fraction_of_items_for_traffic,
    gini,
    popularity_cdf,
    summarize,
    zipf_weights,
)

__all__ = [
    "CapacityError",
    "CdfPoint",
    "ConfigError",
    "DistributionSummary",
    "DppError",
    "EventHandle",
    "FormatError",
    "HostModel",
    "ReproError",
    "ResourceSpec",
    "ResourceUsage",
    "SchedulingError",
    "SchemaError",
    "SimClock",
    "StorageError",
    "TransformError",
    "UtilizationReport",
    "WorkerFailure",
    "fnv1a_64",
    "fraction_of_items_for_traffic",
    "gini",
    "popularity_cdf",
    "stable_fraction",
    "stable_hash",
    "summarize",
    "zipf_weights",
]
