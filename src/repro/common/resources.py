"""Host resource models: CPU, memory bandwidth, and NIC.

The paper's throughput characterizations (Figures 8 and 9, Tables 7 and
9) are all statements about which host resource saturates first.  We
model each resource as a rate-capacity account: work items charge the
account some amount of resource-seconds, and utilization is the charged
amount divided by capacity × elapsed time.

These are analytical (fluid) models rather than cycle simulators — the
paper's numbers are fleet-level utilization percentages, which a fluid
model reproduces faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConfigError


@dataclass(frozen=True)
class ResourceSpec:
    """Static capacities for one host, in base units per second.

    ``cpu_cycles_per_s`` aggregates all cores (cores × frequency),
    ``mem_bw_bytes_per_s`` is peak DRAM bandwidth, and
    ``nic_bytes_per_s`` is full-duplex NIC line rate per direction.
    """

    cpu_cycles_per_s: float
    mem_bw_bytes_per_s: float
    nic_bytes_per_s: float
    memory_capacity_bytes: float = 0.0

    def __post_init__(self) -> None:
        if min(self.cpu_cycles_per_s, self.mem_bw_bytes_per_s, self.nic_bytes_per_s) <= 0:
            raise ConfigError("resource capacities must be positive")
        if self.memory_capacity_bytes < 0:
            raise ConfigError("memory capacity cannot be negative")


@dataclass
class ResourceUsage:
    """Accumulated demand against one :class:`ResourceSpec`.

    Demands are expressed per second of steady-state operation: e.g.
    ``cpu_cycles`` is cycles consumed each second at the offered load.
    """

    cpu_cycles: float = 0.0
    mem_bytes: float = 0.0
    nic_rx_bytes: float = 0.0
    nic_tx_bytes: float = 0.0
    memory_resident_bytes: float = 0.0

    def add(self, other: "ResourceUsage") -> None:
        """Accumulate *other* into this usage record."""
        self.cpu_cycles += other.cpu_cycles
        self.mem_bytes += other.mem_bytes
        self.nic_rx_bytes += other.nic_rx_bytes
        self.nic_tx_bytes += other.nic_tx_bytes
        self.memory_resident_bytes += other.memory_resident_bytes

    def scaled(self, factor: float) -> "ResourceUsage":
        """Return this usage multiplied by *factor* (e.g. a sample rate)."""
        return ResourceUsage(
            cpu_cycles=self.cpu_cycles * factor,
            mem_bytes=self.mem_bytes * factor,
            nic_rx_bytes=self.nic_rx_bytes * factor,
            nic_tx_bytes=self.nic_tx_bytes * factor,
            memory_resident_bytes=self.memory_resident_bytes * factor,
        )


@dataclass(frozen=True)
class UtilizationReport:
    """Fractional utilization of each resource at a given offered load."""

    cpu: float
    mem_bw: float
    nic_rx: float
    nic_tx: float
    memory_capacity: float

    @property
    def bottleneck(self) -> str:
        """Name of the most utilized resource."""
        pairs = [
            ("cpu", self.cpu),
            ("mem_bw", self.mem_bw),
            ("nic_rx", self.nic_rx),
            ("nic_tx", self.nic_tx),
            ("memory_capacity", self.memory_capacity),
        ]
        return max(pairs, key=lambda pair: pair[1])[0]

    @property
    def max_utilization(self) -> float:
        """Utilization of the bottleneck resource."""
        return max(self.cpu, self.mem_bw, self.nic_rx, self.nic_tx, self.memory_capacity)


@dataclass
class HostModel:
    """Fluid model of one host: capacities plus offered per-second usage."""

    spec: ResourceSpec
    usage: ResourceUsage = field(default_factory=ResourceUsage)
    mem_bw_saturation: float = 0.7

    def utilization(self) -> UtilizationReport:
        """Compute utilization at the current offered load.

        Memory bandwidth is reported against *effective* capacity:
        the paper notes DRAM bandwidth saturates at ≈70% of peak
        (Section 6.2), so utilization of 1.0 here means "at the
        practically achievable limit", matching how the paper reports
        its percentages against peak — callers can read both.
        """
        spec = self.spec
        memory_capacity = (
            self.usage.memory_resident_bytes / spec.memory_capacity_bytes
            if spec.memory_capacity_bytes
            else 0.0
        )
        return UtilizationReport(
            cpu=self.usage.cpu_cycles / spec.cpu_cycles_per_s,
            mem_bw=self.usage.mem_bytes / spec.mem_bw_bytes_per_s,
            nic_rx=self.usage.nic_rx_bytes / spec.nic_bytes_per_s,
            nic_tx=self.usage.nic_tx_bytes / spec.nic_bytes_per_s,
            memory_capacity=memory_capacity,
        )

    def max_sustainable_scale(self) -> float:
        """Largest multiplier of the current load the host can sustain.

        Memory bandwidth is limited to ``mem_bw_saturation`` of peak;
        the other resources saturate at 100%.  A value below 1.0 means
        the host is already oversubscribed.
        """
        report = self.utilization()
        limits = []
        if report.cpu > 0:
            limits.append(1.0 / report.cpu)
        if report.mem_bw > 0:
            limits.append(self.mem_bw_saturation / report.mem_bw)
        if report.nic_rx > 0:
            limits.append(1.0 / report.nic_rx)
        if report.nic_tx > 0:
            limits.append(1.0 / report.nic_tx)
        if report.memory_capacity > 0:
            limits.append(1.0 / report.memory_capacity)
        return min(limits) if limits else float("inf")

    def reset(self) -> None:
        """Clear the offered load."""
        self.usage = ResourceUsage()
