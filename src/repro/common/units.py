"""Unit helpers for bytes, bandwidth, and time.

All internal accounting in the library uses *bytes*, *seconds*, and
*bytes per second*.  These helpers exist so that configuration code can
say ``gigabytes(0.15)`` or ``gbps(12.5)`` instead of sprinkling magic
multipliers around.  Decimal (SI) prefixes are used for storage and
network quantities to match how the paper reports them (PB, Gbps);
binary prefixes are available for memory-oriented quantities.
"""

from __future__ import annotations

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000
PB = 1_000_000_000_000_000

KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30


def kilobytes(n: float) -> float:
    """Return *n* decimal kilobytes expressed in bytes."""
    return n * KB


def megabytes(n: float) -> float:
    """Return *n* decimal megabytes expressed in bytes."""
    return n * MB


def gigabytes(n: float) -> float:
    """Return *n* decimal gigabytes expressed in bytes."""
    return n * GB


def terabytes(n: float) -> float:
    """Return *n* decimal terabytes expressed in bytes."""
    return n * TB


def petabytes(n: float) -> float:
    """Return *n* decimal petabytes expressed in bytes."""
    return n * PB


def mebibytes(n: float) -> float:
    """Return *n* binary mebibytes expressed in bytes."""
    return n * MIB


def gbps(n: float) -> float:
    """Return *n* gigabits per second expressed in bytes per second."""
    return n * GB / 8


def mbps(n: float) -> float:
    """Return *n* megabits per second expressed in bytes per second."""
    return n * MB / 8


def to_gb(n_bytes: float) -> float:
    """Express *n_bytes* in decimal gigabytes."""
    return n_bytes / GB


def to_pb(n_bytes: float) -> float:
    """Express *n_bytes* in decimal petabytes."""
    return n_bytes / PB


def to_gbps(bytes_per_s: float) -> float:
    """Express *bytes_per_s* in gigabits per second."""
    return bytes_per_s * 8 / GB


MINUTE = 60.0
HOUR = 3_600.0
DAY = 86_400.0


def minutes(n: float) -> float:
    """Return *n* minutes expressed in seconds."""
    return n * MINUTE


def hours(n: float) -> float:
    """Return *n* hours expressed in seconds."""
    return n * HOUR


def days(n: float) -> float:
    """Return *n* days expressed in seconds."""
    return n * DAY


def human_bytes(n_bytes: float) -> str:
    """Render a byte count with an appropriate SI suffix.

    >>> human_bytes(1_500_000)
    '1.50 MB'
    """
    magnitude = abs(n_bytes)
    for unit, label in ((PB, "PB"), (TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if magnitude >= unit:
            return f"{n_bytes / unit:.2f} {label}"
    return f"{n_bytes:.0f} B"
