"""Exception hierarchy shared across the library.

Every package raises subclasses of :class:`ReproError` so callers can
catch library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A table schema or feature specification is invalid."""


class StorageError(ReproError):
    """A storage-layer operation failed (filesystem, blocks, media)."""


class FormatError(ReproError):
    """A DWRF file is malformed or was read inconsistently."""


class CapacityError(StorageError):
    """A placement or write exceeded available capacity."""


class TransformError(ReproError):
    """A preprocessing transform was misconfigured or failed."""


class DppError(ReproError):
    """A DPP control- or data-plane operation failed."""


class WorkerFailure(DppError):
    """A DPP worker died; raised internally and handled by the master."""


class SchedulingError(ReproError):
    """The global scheduler could not place a job or dataset."""


class ConfigError(ReproError):
    """A workload or hardware configuration is inconsistent."""
