"""Sim-time tracing: spans, instants, and counter samples.

Every event is stamped with *virtual* time — :class:`SimClock` seconds
for the fleet and timed-DPP planes, the round index for the chaos
plane — never wall-clock.  That one rule is what makes traces
first-class artifacts: the same scenario at the same seed produces a
byte-identical trace whether it ran inline, under ``--jobs 8``, or on a
different machine, so traces diff and archive exactly like reports.

The recorder comes in two shapes:

* :class:`Tracer` — the real thing.  Per-actor span stacks (an actor is
  a logical thread: ``"fleet"``, ``"job-7"``, ``"worker-0"``), a
  rebindable time source (each scenario kind binds its own clock), a
  deterministic run id derived from ``stable_hash(scenario, seed)``,
  and an attached :class:`~repro.telemetry.metrics.MetricsRegistry`.
* :data:`NULL_TRACER` — one shared no-op recorder.  Instrumented code
  guards hot paths with ``if tracer.enabled:`` so a disabled telemetry
  plane costs a single attribute check per site.

:meth:`Tracer.freeze` closes any dangling spans and packages the event
stream as a :class:`Trace` — a :class:`ReportBase` subclass (kind
``"trace"``) whose ``merge`` appends whole processes, which is how the
experiment runner folds per-scenario traces from a parallel fan-out
into one bundle.  Export to the Chrome trace-event format lives in
:mod:`repro.telemetry.chrome`.
"""

from __future__ import annotations

import logging
import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..common.errors import ConfigError
from ..common.hashing import stable_hash
from ..common.serialization import (
    FormatError,
    ReportBase,
    require_keys,
    revive_float,
)
from .metrics import NULL_METRICS, MetricsRegistry

#: Event phases — a deliberate subset of the Chrome trace-event phases.
PHASE_SPAN = "X"
PHASE_INSTANT = "I"
PHASE_COUNTER = "C"
_PHASES = (PHASE_SPAN, PHASE_INSTANT, PHASE_COUNTER)

#: A rebindable virtual-clock read, e.g. ``lambda: clock.now``.
TimeSource = Callable[[], float]

_log = logging.getLogger("repro.telemetry")


def _freeze_args(args: Mapping[str, Any]) -> tuple:
    """Canonicalize event args: sorted keys, scalar finite values."""
    if not args:
        return ()
    for key, value in args.items():
        if isinstance(value, float) and not math.isfinite(value):
            raise ConfigError(
                f"trace arg {key!r} must be finite, got {value!r}"
            )
        if not isinstance(value, (str, int, float)):
            raise ConfigError(
                f"trace arg {key!r} must be a str/int/float scalar, "
                f"got {type(value).__name__}"
            )
    return tuple(sorted(args.items()))


@dataclass(frozen=True)
class TraceEvent:
    """One recorded point or interval, in sim-time seconds."""

    phase: str  # "X" span, "I" instant, "C" counter sample
    name: str
    actor: str
    time_s: float  # span start, or the instant/sample timestamp
    dur_s: float = 0.0  # spans only
    args: tuple = ()  # sorted (key, scalar) pairs

    def to_row(self) -> dict:
        return {
            "ph": self.phase,
            "name": self.name,
            "actor": self.actor,
            "t": self.time_s,
            "dur": self.dur_s,
            "args": {key: value for key, value in self.args},
        }

    @classmethod
    def from_row(cls, row: Mapping[str, Any]) -> "TraceEvent":
        require_keys(
            row, ("ph", "name", "actor", "t", "dur", "args"),
            context="trace event",
        )
        if row["ph"] not in _PHASES:
            raise FormatError(
                f"trace event phase {row['ph']!r} not in {_PHASES}"
            )
        return cls(
            phase=row["ph"],
            name=row["name"],
            actor=row["actor"],
            time_s=revive_float(row["t"]),
            dur_s=revive_float(row["dur"]),
            args=tuple(sorted(row["args"].items())),
        )


@dataclass
class TraceProcess:
    """One traced run (one scenario execution) — a Chrome ``pid``."""

    name: str
    run_id: str
    events: list[TraceEvent] = field(default_factory=list)

    def to_row(self) -> dict:
        return {
            "name": self.name,
            "run_id": self.run_id,
            "events": [event.to_row() for event in self.events],
        }

    @classmethod
    def from_row(cls, row: Mapping[str, Any]) -> "TraceProcess":
        require_keys(
            row, ("name", "run_id", "events"), context="trace process"
        )
        return cls(
            name=row["name"],
            run_id=row["run_id"],
            events=[TraceEvent.from_row(event) for event in row["events"]],
        )


class Trace(ReportBase):
    """A bundle of traced processes, archivable like any report."""

    report_kind = "trace"

    def __init__(self, processes: list[TraceProcess] | None = None) -> None:
        self.processes = list(processes or [])
        self._check_unique()
        self.processes.sort(key=lambda process: process.name)

    def _check_unique(self) -> None:
        names = [process.name for process in self.processes]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ConfigError(
                f"trace process names must be unique; duplicated: {dupes}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self.to_json() == other.to_json()

    def payload(self) -> dict:
        return {
            "processes": [process.to_row() for process in self.processes]
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Trace":
        require_keys(payload, ("processes",), context="trace")
        return cls(
            processes=[
                TraceProcess.from_row(row) for row in payload["processes"]
            ]
        )

    def metrics(self) -> dict[str, float]:
        events = [e for p in self.processes for e in p.events]
        spans = [e for e in events if e.phase == PHASE_SPAN]
        return {
            "trace.processes": float(len(self.processes)),
            "trace.events": float(len(events)),
            "trace.spans": float(len(spans)),
            "trace.instants": float(
                sum(1 for e in events if e.phase == PHASE_INSTANT)
            ),
            "trace.counters": float(
                sum(1 for e in events if e.phase == PHASE_COUNTER)
            ),
            "trace.span_time_s": sum(e.dur_s for e in spans),
        }

    def merge(self, other: "ReportBase") -> "Trace":
        """Append *other*'s processes; names must stay disjoint."""
        if not isinstance(other, Trace):
            raise ConfigError("can only merge a trace into a trace")
        self.processes.extend(other.processes)
        self._check_unique()
        self.processes.sort(key=lambda process: process.name)
        return self

    def process(self, name: str) -> TraceProcess:
        for candidate in self.processes:
            if candidate.name == name:
                return candidate
        raise ConfigError(
            f"no traced process named {name!r}; have "
            f"{[p.name for p in self.processes]}"
        )


def merge_traces(traces) -> Trace:
    """Fold per-scenario traces (in input order) into one bundle."""
    merged = Trace()
    for trace in traces:
        if trace is not None:
            merged.merge(trace)
    return merged


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The shared disabled recorder: every operation is a no-op.

    Instrumented code holds a tracer unconditionally and guards only
    hot paths with ``tracer.enabled``; cold paths may simply call
    through and land here.
    """

    __slots__ = ()
    enabled = False
    scenario = ""
    run_id = ""
    metrics = NULL_METRICS  # shared no-op registry

    def bind_clock(self, time_fn: TimeSource) -> None:
        pass

    def now(self) -> float:
        return 0.0

    def begin(self, name: str, actor: str = "main", **args) -> None:
        pass

    def end(self, actor: str = "main") -> None:
        pass

    def span(self, name: str, actor: str = "main", **args) -> _NullSpan:
        return _NULL_SPAN

    def emit_span(
        self,
        name: str,
        actor: str,
        start_s: float,
        dur_s: float,
        args: tuple = (),
    ) -> None:
        pass

    def instant(self, name: str, actor: str = "main", **args) -> None:
        pass

    def counter(self, name: str, value: float, actor: str = "main") -> None:
        pass

    def log(self, message: str, level: int = logging.INFO, **fields) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """Records sim-time spans, instants, and counter samples.

    One tracer traces one scenario run.  The run id is derived from
    ``(scenario, seed)`` via :func:`stable_hash`, so re-running the
    same cell — in any process — yields the same id and a comparable
    trace.  The time source starts at a constant ``0.0`` and is
    rebound by whichever plane owns the clock (:class:`FleetSimulator`
    binds ``clock.now``, :class:`ChaosRunner` its round index, ...).
    """

    enabled = True

    def __init__(
        self,
        scenario: str = "",
        seed: int = 0,
        time_fn: TimeSource | None = None,
    ) -> None:
        self.scenario = scenario
        self.seed = seed
        self.run_id = format(stable_hash("trace", scenario, seed), "016x")
        self.metrics = MetricsRegistry()
        self._time: TimeSource = time_fn or (lambda: 0.0)
        self._events: list[TraceEvent] = []
        self._stacks: dict[str, list[tuple[str, float, tuple]]] = {}

    # -- the clock -------------------------------------------------------------

    def bind_clock(self, time_fn: TimeSource) -> None:
        """Point the tracer at the owning plane's virtual clock."""
        self._time = time_fn

    def now(self) -> float:
        return self._time()

    # -- recording -------------------------------------------------------------

    def begin(self, name: str, actor: str = "main", **args) -> None:
        """Open a span on *actor*'s stack (closed by :meth:`end`)."""
        stack = self._stacks.get(actor)
        if stack is None:
            stack = self._stacks[actor] = []
        stack.append((name, self._time(), _freeze_args(args)))

    def end(self, actor: str = "main") -> None:
        """Close *actor*'s innermost open span and emit it."""
        stack = self._stacks.get(actor)
        if not stack:
            raise ConfigError(f"no open span to end for actor {actor!r}")
        name, start, args = stack.pop()
        now = self._time()
        self._events.append(
            TraceEvent(
                PHASE_SPAN, name, actor, start, max(0.0, now - start), args
            )
        )

    @contextmanager
    def span(self, name: str, actor: str = "main", **args):
        """``with tracer.span("fleet.tick"):`` — begin/end, exception-safe."""
        self.begin(name, actor, **args)
        try:
            yield self
        finally:
            self.end(actor)

    def emit_span(
        self,
        name: str,
        actor: str,
        start_s: float,
        dur_s: float,
        args: tuple = (),
    ) -> None:
        """Append an already-closed span — the hot-loop shortcut.

        For a caller that knows the span's bounds up front this is
        :meth:`begin` + :meth:`end` minus the actor-stack traffic and
        kwargs freezing; it emits the identical :class:`TraceEvent`.
        *args* must already be in frozen ``(key, value)`` tuple form.
        """
        self._events.append(
            TraceEvent(PHASE_SPAN, name, actor, start_s, dur_s, args)
        )

    def instant(self, name: str, actor: str = "main", **args) -> None:
        """A point event (fault injected, job admitted, ...)."""
        self._events.append(
            TraceEvent(
                PHASE_INSTANT, name, actor, self._time(), 0.0,
                _freeze_args(args),
            )
        )

    def counter(self, name: str, value: float, actor: str = "main") -> None:
        """Sample a time series (queue depth, granted bandwidth, ...)."""
        self._events.append(
            TraceEvent(
                PHASE_COUNTER, name, actor, self._time(), 0.0,
                (("value", float(value)),),
            )
        )

    def log(self, message: str, level: int = logging.INFO, **fields) -> None:
        """Structured log record stamped with sim-time, run id, scenario."""
        if _log.isEnabledFor(level):
            _log.log(
                level,
                message,
                extra={
                    "sim_time_s": self._time(),
                    "run_id": self.run_id,
                    "scenario": self.scenario,
                    "fields": dict(fields) if fields else None,
                },
            )

    # -- packaging -------------------------------------------------------------

    @property
    def event_count(self) -> int:
        return len(self._events)

    def open_spans(self) -> dict[str, int]:
        """Actor → open-span depth (diagnostic)."""
        return {
            actor: len(stack)
            for actor, stack in sorted(self._stacks.items())
            if stack
        }

    def freeze(self, process_name: str | None = None) -> Trace:
        """Close dangling spans at the current time and package a Trace."""
        for actor in sorted(self._stacks):
            while self._stacks[actor]:
                self.end(actor)
        name = process_name or self.scenario or "trace"
        return Trace(
            processes=[
                TraceProcess(
                    name=name, run_id=self.run_id, events=list(self._events)
                )
            ]
        )
