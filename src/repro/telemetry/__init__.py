"""The telemetry plane: sim-time tracing, metrics, logs, Chrome export.

Everything in this package is stamped with *virtual* time, so traces
and snapshots are deterministic artifacts — byte-identical across
process counts and machines for a fixed scenario and seed — and
archive/merge/diff exactly like the repo's reports.

Entry points:

* :class:`Tracer` / :data:`NULL_TRACER` — the recorder and its shared
  no-op twin (disabled overhead ≈ one attribute check per site).
* :class:`MetricsRegistry` / :class:`MetricsSnapshot` — counters,
  gauges, histograms under ``<kind>.<metric>`` names.
* :class:`Trace` — the archived span stream (report kind ``"trace"``).
* :func:`write_chrome_trace` / :func:`to_chrome` — open in Perfetto.
* ``python -m repro.telemetry`` — summarize / diff / export CLI.
"""

from .chrome import to_chrome, validate_chrome_trace, write_chrome_trace
from .logs import JsonLogFormatter, configure_logging, verbosity_level
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    NULL_METRICS,
    NullMetricsRegistry,
)
from .summary import SpanAggregate, diff_aggregates, span_aggregates, top_spans
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Trace,
    TraceEvent,
    TraceProcess,
    Tracer,
    merge_traces,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLogFormatter",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "SpanAggregate",
    "Trace",
    "TraceEvent",
    "TraceProcess",
    "Tracer",
    "configure_logging",
    "diff_aggregates",
    "merge_traces",
    "span_aggregates",
    "to_chrome",
    "top_spans",
    "validate_chrome_trace",
    "verbosity_level",
    "write_chrome_trace",
]
