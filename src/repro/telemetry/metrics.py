"""Metrics instruments: counters, gauges, and histograms.

The registry speaks the same ``<kind>.<metric>`` naming convention as
:meth:`repro.common.serialization.ReportBase.metrics`, so a snapshot of
live instruments and an archived report's metric block are directly
comparable (and :meth:`ReportBase.diff`-able).  Snapshots serialize
through the shared JSON dialect as a first-class report kind
(``"metrics"``), which makes them mergeable across processes with the
usual accumulate semantics: counters add, gauges keep the latest
observation, histograms combine their moments and buckets.

Instrument handles are plain mutable objects — hot paths fetch them
once (``hits = registry.counter("broker.cache_memo_hits")``) and call
``inc()`` with no dictionary lookup per event.  The shared
:data:`NULL_METRICS` registry hands out no-op instruments so code can
be written against the metrics API unconditionally while a disabled
telemetry plane costs one attribute check.
"""

from __future__ import annotations

import math
import re
from typing import Iterable, Mapping

from ..common.errors import ConfigError
from ..common.serialization import (
    ReportBase,
    require_keys,
    revive_float,
)

#: Metric names follow report metric keys: ``<kind>.<metric>`` with
#: snake_case segments (``fleet.clock_events``, ``broker.cache_memo_hits``).
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

#: Histogram bucket exponents are clamped to this range; values at or
#: below zero land in the dedicated underflow bucket.
_BUCKET_MIN_EXP = -32
_BUCKET_MAX_EXP = 64
_UNDERFLOW_BUCKET = "le0"


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ConfigError(
            f"metric name {name!r} must be snake_case '<kind>.<metric>' "
            "(like report metric keys)"
        )
    return name


def _bucket_key(value: float) -> str:
    """Power-of-two bucket label: the smallest ``2**e`` holding *value*."""
    if value <= 0.0:
        return _UNDERFLOW_BUCKET
    exp = math.ceil(math.log2(value))
    exp = max(_BUCKET_MIN_EXP, min(_BUCKET_MAX_EXP, exp))
    return str(exp)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ConfigError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        self.value += amount


class Gauge:
    """A last-observation-wins level (queue depth, derate fraction)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Moments plus power-of-two buckets — enough for tail summaries
    without storing observations."""

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.nan
        self.max = math.nan
        self.buckets: dict[str, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.count == 1:
            self.min = value
            self.max = value
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        key = _bucket_key(value)
        self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan


class _NullInstrument:
    """One shared sink behind every disabled counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    value = 0.0
    count = 0
    total = 0.0
    mean = math.nan

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Get-or-create home for named instruments.

    A name is bound to exactly one instrument type for the life of the
    registry; asking for ``counter(name)`` after ``gauge(name)`` is a
    loud :class:`ConfigError`, not a silent second instrument.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory(_check_name(name))
            self._instruments[name] = instrument
        elif not isinstance(instrument, factory):
            raise ConfigError(
                f"metric {name!r} is already a "
                f"{type(instrument).__name__.lower()}, not a "
                f"{factory.__name__.lower()}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> "MetricsSnapshot":
        """Freeze the live instruments into a serializable report."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                histograms[name] = {
                    "count": instrument.count,
                    "total": instrument.total,
                    "min": instrument.min,
                    "max": instrument.max,
                    "buckets": dict(instrument.buckets),
                }
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )


class NullMetricsRegistry:
    """The disabled registry: every instrument is the shared no-op."""

    __slots__ = ()
    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> "MetricsSnapshot":
        return MetricsSnapshot(counters={}, gauges={}, histograms={})


NULL_METRICS = NullMetricsRegistry()

_HISTOGRAM_KEYS = ("count", "total", "min", "max", "buckets")


class MetricsSnapshot(ReportBase):
    """A frozen registry state as a report (kind ``"metrics"``)."""

    report_kind = "metrics"

    def __init__(
        self,
        counters: Mapping[str, float] | None = None,
        gauges: Mapping[str, float] | None = None,
        histograms: Mapping[str, Mapping] | None = None,
    ) -> None:
        self.counters = dict(counters or {})
        self.gauges = dict(gauges or {})
        self.histograms = {
            name: dict(spec) for name, spec in (histograms or {}).items()
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return self.to_json() == other.to_json()

    def payload(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {key: spec[key] for key in _HISTOGRAM_KEYS}
                for name, spec in self.histograms.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MetricsSnapshot":
        require_keys(
            payload,
            ("counters", "gauges", "histograms"),
            context="metrics snapshot",
        )
        histograms = {}
        for name, spec in payload["histograms"].items():
            require_keys(spec, _HISTOGRAM_KEYS, context=f"histogram {name!r}")
            histograms[name] = {
                "count": int(spec["count"]),
                "total": revive_float(spec["total"]),
                "min": revive_float(spec["min"]),
                "max": revive_float(spec["max"]),
                "buckets": {
                    key: int(count) for key, count in spec["buckets"].items()
                },
            }
        return cls(
            counters={
                name: revive_float(value)
                for name, value in payload["counters"].items()
            },
            gauges={
                name: revive_float(value)
                for name, value in payload["gauges"].items()
            },
            histograms=histograms,
        )

    def metrics(self) -> dict[str, float]:
        out: dict[str, float] = {}
        out.update(self.counters)
        out.update(self.gauges)
        for name, spec in self.histograms.items():
            count = spec["count"]
            out[f"{name}.count"] = float(count)
            out[f"{name}.mean"] = (
                spec["total"] / count if count else math.nan
            )
            out[f"{name}.max"] = spec["max"]
        return dict(sorted(out.items()))

    def merge(self, other: "ReportBase") -> "MetricsSnapshot":
        if not isinstance(other, MetricsSnapshot):
            raise ConfigError(
                "can only merge a metrics snapshot into a metrics snapshot"
            )
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        for name, value in other.gauges.items():
            self.gauges[name] = value
        for name, spec in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = {
                    "count": spec["count"],
                    "total": spec["total"],
                    "min": spec["min"],
                    "max": spec["max"],
                    "buckets": dict(spec["buckets"]),
                }
                continue
            mine["count"] += spec["count"]
            mine["total"] += spec["total"]
            mine["min"] = _nan_min(mine["min"], spec["min"])
            mine["max"] = _nan_max(mine["max"], spec["max"])
            for key, count in spec["buckets"].items():
                mine["buckets"][key] = mine["buckets"].get(key, 0) + count
        return self


def _nan_min(a: float, b: float) -> float:
    if math.isnan(a):
        return b
    if math.isnan(b):
        return a
    return min(a, b)


def _nan_max(a: float, b: float) -> float:
    if math.isnan(a):
        return b
    if math.isnan(b):
        return a
    return max(a, b)


def snapshot_of(instruments: Iterable[Counter | Gauge | Histogram]):
    """Convenience: snapshot a loose collection of instruments."""
    registry = MetricsRegistry()
    for instrument in instruments:
        registry._instruments[instrument.name] = instrument
    return registry.snapshot()
