"""Structured JSON logging stamped with sim-time, run id, and scenario.

The repo's planes log through the stdlib ``repro.*`` logger hierarchy
(primarily via :meth:`repro.telemetry.tracer.Tracer.log`).  This module
owns the formatting contract: one JSON object per line, sorted keys,
and — when the record came from a tracer — the three stamps that make
a log line joinable against a trace artifact: ``sim_time_s``,
``run_id``, and ``scenario``.

Nothing here configures logging at import time.  CLIs opt in through
:func:`configure_logging`, which maps the usual verbosity flags onto
levels (``--quiet`` → errors only, default → warnings, ``-v`` → info,
``-vv`` → debug) and writes to stderr so artifacts on stdout stay
machine-parseable.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO

#: Tracer-originated stamps copied onto the JSON record when present.
_STAMPS = ("sim_time_s", "run_id", "scenario")


class JsonLogFormatter(logging.Formatter):
    """One sorted-key JSON object per record."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for stamp in _STAMPS:
            value = getattr(record, stamp, None)
            if value is not None:
                payload[stamp] = value
        fields = getattr(record, "fields", None)
        if fields:
            payload["fields"] = fields
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def verbosity_level(verbosity: int) -> int:
    """Map a CLI verbosity knob onto a logging level."""
    if verbosity < 0:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(
    verbosity: int = 0, stream: IO[str] | None = None
) -> logging.Logger:
    """(Re)configure the ``repro`` logger for JSON-lines output.

    Idempotent: repeated calls replace the handler rather than stack
    them, so tests and long-lived sessions can re-tune verbosity.
    Returns the configured logger.
    """
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    logger.addHandler(handler)
    logger.setLevel(verbosity_level(verbosity))
    logger.propagate = False
    return logger
