"""``python -m repro.telemetry`` — trace artifacts as first-class files.

Subcommands::

    # Top-N span names by self-time (the profile view)
    python -m repro.telemetry summarize trace.json --top 10

    # What changed between two traces of the same scenario?
    python -m repro.telemetry diff base_trace.json new_trace.json

    # Export to the Chrome trace-event format (Perfetto, chrome://tracing)
    python -m repro.telemetry export trace.json chrome.json --validate

Input traces are ``repro.common`` report documents of kind ``"trace"``
(what ``python -m repro.experiments run --trace PATH`` writes).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from ..common.errors import FormatError
from ..common.serialization import report_from_json
from .chrome import to_chrome, validate_chrome_trace, write_chrome_trace
from .summary import diff_aggregates, top_spans
from .tracer import Trace


def load_trace(path: str | pathlib.Path) -> Trace:
    """Read a trace artifact, rejecting other report kinds loudly."""
    report = report_from_json(pathlib.Path(path).read_text())
    if not isinstance(report, Trace):
        raise FormatError(
            f"{path} is a {report.report_kind!r} report, not a trace"
        )
    return report


def _cmd_summarize(args: argparse.Namespace) -> int:
    from ..analysis.report import render_table

    trace = load_trace(args.trace)
    metrics = trace.metrics()
    ranked = top_spans(trace, top=args.top)
    rows = [
        [
            a.name,
            str(a.count),
            f"{a.self_s:.3f}",
            f"{a.total_s:.3f}",
            f"{a.mean_s:.4f}",
        ]
        for a in ranked
    ]
    print(
        render_table(
            ["span", "count", "self s", "total s", "mean s"],
            rows,
            title=(
                f"Top {len(rows)} spans by self-time — "
                f"{metrics['trace.processes']:.0f} process(es), "
                f"{metrics['trace.events']:.0f} events"
            ),
        )
    )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from ..analysis.report import render_table

    base = load_trace(args.base)
    other = load_trace(args.other)
    deltas = diff_aggregates(base, other)
    rows = [
        [
            name,
            f"{delta['count']:+.0f}",
            f"{delta['self_s']:+.3f}",
            f"{delta['total_s']:+.3f}",
        ]
        for name, delta in deltas.items()
        if any(delta.values())
    ]
    if not rows:
        print("traces are span-identical")
        return 0
    print(
        render_table(
            ["span", "Δcount", "Δself s", "Δtotal s"],
            rows,
            title=f"Span deltas: {args.other} vs {args.base}",
        )
    )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    payload = to_chrome(trace)
    if args.validate:
        problems = validate_chrome_trace(payload)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
    target = write_chrome_trace(trace, args.out)
    events = len(payload["traceEvents"])
    print(f"chrome trace ({events} events) → {target}")
    return 0


def build_parser(prog: str = "python -m repro.telemetry") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Inspect, compare, and export sim-time trace artifacts.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    summarize = commands.add_parser(
        "summarize", help="top-N span names by self-time"
    )
    summarize.add_argument("trace", help="trace artifact (report kind 'trace')")
    summarize.add_argument(
        "--top", type=int, default=10, help="how many span names (default 10)"
    )
    summarize.set_defaults(handler=_cmd_summarize)

    diff = commands.add_parser(
        "diff", help="per-span-name deltas between two traces"
    )
    diff.add_argument("base", help="baseline trace artifact")
    diff.add_argument("other", help="comparison trace artifact")
    diff.set_defaults(handler=_cmd_diff)

    export = commands.add_parser(
        "export", help="write a Chrome trace-event JSON (Perfetto-openable)"
    )
    export.add_argument("trace", help="trace artifact to export")
    export.add_argument("out", help="output path for the Chrome JSON")
    export.add_argument(
        "--validate",
        action="store_true",
        help="schema-check the exported payload; non-zero exit on problems",
    )
    export.set_defaults(handler=_cmd_export)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except (FormatError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
