"""Trace analysis: per-span-name aggregates and self-time attribution.

Self-time is the span's duration minus the durations of its *direct*
children on the same actor — the classic profile view.  Nesting is
reconstructed from interval containment per ``(process, actor)``
track, which is exact for traces produced by
:class:`~repro.telemetry.tracer.Tracer` (spans on one actor stack are
properly nested by construction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .tracer import PHASE_SPAN, Trace


@dataclass
class SpanAggregate:
    """Totals for one span name across a whole trace."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else math.nan


@dataclass
class _OpenSpan:
    start: float
    end: float
    children_s: float = 0.0
    aggregate: SpanAggregate = field(default=None)  # type: ignore[assignment]


def span_aggregates(trace: Trace) -> dict[str, SpanAggregate]:
    """Aggregate every span in *trace* by name, attributing self-time."""
    aggregates: dict[str, SpanAggregate] = {}
    for process in trace.processes:
        tracks: dict[str, list] = {}
        for event in process.events:
            if event.phase == PHASE_SPAN:
                tracks.setdefault(event.actor, []).append(event)
        for spans in tracks.values():
            spans.sort(key=lambda e: (e.time_s, -e.dur_s, e.name))
            stack: list[_OpenSpan] = []
            for event in spans:
                aggregate = aggregates.get(event.name)
                if aggregate is None:
                    aggregate = aggregates[event.name] = SpanAggregate(
                        event.name
                    )
                aggregate.count += 1
                aggregate.total_s += event.dur_s
                if event.dur_s > aggregate.max_s:
                    aggregate.max_s = event.dur_s
                end = event.time_s + event.dur_s
                while stack and not (
                    event.time_s >= stack[-1].start and end <= stack[-1].end
                ):
                    closed = stack.pop()
                    closed.aggregate.self_s += (
                        closed.end - closed.start - closed.children_s
                    )
                if stack:
                    stack[-1].children_s += event.dur_s
                stack.append(
                    _OpenSpan(event.time_s, end, aggregate=aggregate)
                )
            while stack:
                closed = stack.pop()
                closed.aggregate.self_s += (
                    closed.end - closed.start - closed.children_s
                )
    return aggregates


def top_spans(trace: Trace, top: int = 10) -> list[SpanAggregate]:
    """The *top* span names by self-time (ties broken by name)."""
    ranked = sorted(
        span_aggregates(trace).values(),
        key=lambda a: (-a.self_s, a.name),
    )
    return ranked[: max(0, top)]


def diff_aggregates(
    base: Trace, other: Trace
) -> dict[str, dict[str, float]]:
    """Per-span-name ``{count, total_s, self_s}`` deltas (other − base)."""
    mine = span_aggregates(base)
    theirs = span_aggregates(other)
    out: dict[str, dict[str, float]] = {}
    for name in sorted(set(mine) | set(theirs)):
        a = mine.get(name) or SpanAggregate(name)
        b = theirs.get(name) or SpanAggregate(name)
        out[name] = {
            "count": float(b.count - a.count),
            "total_s": b.total_s - a.total_s,
            "self_s": b.self_s - a.self_s,
        }
    return out
