"""Chrome trace-event export: open traces in Perfetto or chrome://tracing.

A :class:`~repro.telemetry.tracer.Trace` maps onto the Chrome JSON
format naturally: each traced process becomes a ``pid`` (with a
``process_name`` metadata event), each actor a ``tid`` (numbered by
first appearance, with a ``thread_name`` metadata event), spans become
complete ``"X"`` events, instants thread-scoped ``"i"`` events, and
counter samples ``"C"`` events.  Sim-time seconds become microsecond
timestamps, which Perfetto renders as wall-clock-looking tracks.

The export is deterministic — event order, ids, and float formatting
all derive from the trace — so exported files diff cleanly, and
:func:`validate_chrome_trace` gives CI a dependency-free schema check
(a list of problems, empty when the payload is well-formed).
"""

from __future__ import annotations

import pathlib
from typing import Any, Mapping

from ..common.serialization import dump_json, null_specials
from .tracer import PHASE_COUNTER, PHASE_INSTANT, PHASE_SPAN, Trace

#: Sim-time seconds → Chrome microseconds.
_US_PER_S = 1_000_000.0

_VALID_PHASES = {"X", "i", "C", "M"}
_METADATA_NAMES = {"process_name", "thread_name"}


def to_chrome(trace: Trace) -> dict:
    """Render a trace as a Chrome trace-event JSON object."""
    events: list[dict] = []
    for pid, process in enumerate(trace.processes, start=1):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": process.name},
            }
        )
        tids: dict[str, int] = {}
        for event in process.events:
            tid = tids.get(event.actor)
            if tid is None:
                tid = tids[event.actor] = len(tids) + 1
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": event.actor},
                    }
                )
            ts = event.time_s * _US_PER_S
            args = {key: value for key, value in event.args}
            if event.phase == PHASE_SPAN:
                events.append(
                    {
                        "ph": "X",
                        "name": event.name,
                        "pid": pid,
                        "tid": tid,
                        "ts": ts,
                        "dur": event.dur_s * _US_PER_S,
                        "args": args,
                    }
                )
            elif event.phase == PHASE_INSTANT:
                events.append(
                    {
                        "ph": "i",
                        "name": event.name,
                        "pid": pid,
                        "tid": tid,
                        "ts": ts,
                        "s": "t",
                        "args": args,
                    }
                )
            elif event.phase == PHASE_COUNTER:
                events.append(
                    {
                        "ph": "C",
                        "name": event.name,
                        "pid": pid,
                        "tid": tid,
                        "ts": ts,
                        "args": args,
                    }
                )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(payload: Any) -> list[str]:
    """Schema-check a Chrome trace payload; returns problems (empty = ok)."""
    problems: list[str] = []
    if not isinstance(payload, Mapping):
        return ["payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload has no 'traceEvents' list"]
    if not events:
        problems.append("'traceEvents' is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, Mapping):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: bad phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing event name")
        for id_key in ("pid", "tid"):
            if not isinstance(event.get(id_key), int):
                problems.append(f"{where}: missing integer {id_key!r}")
        if phase == "M":
            if event["name"] not in _METADATA_NAMES:
                problems.append(
                    f"{where}: unknown metadata event {event['name']!r}"
                )
            if not isinstance(event.get("args", {}).get("name"), str):
                problems.append(f"{where}: metadata needs args.name")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            problems.append(f"{where}: missing numeric 'ts'")
        if phase == "X":
            dur = event.get("dur")
            if (
                not isinstance(dur, (int, float))
                or isinstance(dur, bool)
                or dur < 0
            ):
                problems.append(f"{where}: 'X' needs a non-negative 'dur'")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: instant scope 's' must be t/p/g")
        if phase == "C" and not isinstance(event.get("args"), Mapping):
            problems.append(f"{where}: counter needs an 'args' mapping")
    return problems


def write_chrome_trace(trace: Trace, path: str | pathlib.Path) -> pathlib.Path:
    """Export *trace* to a Chrome trace JSON file; returns the path."""
    target = pathlib.Path(path)
    target.write_text(dump_json(null_specials(to_chrome(trace))))
    return target
