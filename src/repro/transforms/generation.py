"""Feature generation ops: Cartesian, NGram, Bucketize, GetLocalHour, Sampling.

Feature generation derives new features from raw ones and dominates
transformation compute (~75% of cycles, Section 6.4) — Cartesian and
NGram in particular expand the data they touch.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import TransformError
from .base import OpClass, OpCost, Transform, register
from .batch import Column, DenseColumn, FeatureBatch, SparseColumn
from .sparse import splitmix64


@register
class Cartesian(Transform):
    """Cartesian product of two sparse features' ID lists per row.

    Pair (a, b) is combined with a mixing hash so the output remains a
    flat categorical space.  ``max_pairs`` caps the per-row blowup, as
    production pipelines must.
    """

    name = "Cartesian"
    op_class = OpClass.FEATURE_GENERATION
    cost = OpCost(cycles_per_element=40.0, mem_bytes_per_element=96.0)

    def __init__(self, left_id: int, right_id: int, max_pairs: int = 256) -> None:
        if max_pairs <= 0:
            raise TransformError("max_pairs must be positive")
        self._left_id = left_id
        self._right_id = right_id
        self.max_pairs = max_pairs

    @property
    def input_ids(self) -> tuple[int, ...]:
        return (self._left_id, self._right_id)

    def apply(self, batch: FeatureBatch) -> Column:
        left = batch.sparse(self._left_id)
        right = batch.sparse(self._right_id)
        left_lengths = left.lengths()
        right_lengths = right.lengths()
        counts = np.minimum(left_lengths * right_lengths, self.max_pairs)
        offsets = np.zeros(len(left) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        if total == 0:
            return SparseColumn(offsets, np.empty(0, dtype=np.int64))
        # Pair k of a row maps to (a[k // |b|], b[k % |b|]) — the
        # meshgrid walk order — computed flat across every row at once.
        k = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], counts)
        right_size = np.repeat(right_lengths, counts)
        a = left.values[np.repeat(left.offsets[:-1], counts) + k // right_size]
        b = right.values[np.repeat(right.offsets[:-1], counts) + k % right_size]
        with np.errstate(over="ignore"):
            mixed = splitmix64(a * np.int64(1_000_003) + b)
        return SparseColumn(offsets, (mixed >> np.uint64(1)).astype(np.int64))


@register
class NGram(Transform):
    """N-grams over the concatenation of one or more sparse features.

    Consecutive windows of *n* IDs are hashed into single IDs; this is
    the "n-gram between multiple sparse features" of Table 11.
    """

    name = "NGram"
    op_class = OpClass.FEATURE_GENERATION
    cost = OpCost(cycles_per_element=30.0, mem_bytes_per_element=72.0)

    def __init__(self, input_ids: list[int], n: int = 2) -> None:
        if not input_ids:
            raise TransformError("NGram needs at least one input feature")
        if n < 1:
            raise TransformError("n must be at least 1")
        self._input_ids = tuple(input_ids)
        self.n = n

    @property
    def input_ids(self) -> tuple[int, ...]:
        return self._input_ids

    def apply(self, batch: FeatureBatch) -> Column:
        columns = [batch.sparse(fid) for fid in self._input_ids]
        n_rows = batch.n_rows
        sequence, seq_offsets = self._concatenate_rows(columns, n_rows)
        seq_lengths = np.diff(seq_offsets)
        windows = np.maximum(seq_lengths - (self.n - 1), 0)
        offsets = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(windows, out=offsets[1:])
        total = int(offsets[-1])
        if total == 0:
            return SparseColumn(offsets, np.empty(0, dtype=np.int64))
        # Window k of a row starts at its sequence offset + k; the
        # n-gram hash folds the n positions iteratively, all rows flat.
        base = np.repeat(seq_offsets[:-1], windows) + (
            np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], windows)
        )
        mixed = np.zeros(total, dtype=np.uint64)
        with np.errstate(over="ignore"):
            for j in range(self.n):
                mixed = splitmix64(
                    mixed.astype(np.int64) * np.int64(31) + sequence[base + j]
                )
        return SparseColumn(offsets, (mixed >> np.uint64(1)).astype(np.int64))

    @staticmethod
    def _concatenate_rows(
        columns: list[SparseColumn], n_rows: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Row-wise concatenation of several sparse columns, flat.

        Returns ``(values, offsets)`` where each row's span holds its
        IDs from every input column in column order.
        """
        if len(columns) == 1:
            return columns[0].values, columns[0].offsets
        lengths = np.stack([column.lengths() for column in columns])
        seq_offsets = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(lengths.sum(axis=0), out=seq_offsets[1:])
        values = np.empty(int(seq_offsets[-1]), dtype=np.int64)
        prior = np.zeros(n_rows, dtype=np.int64)
        for column, column_lengths in zip(columns, lengths):
            reps = column_lengths
            within = np.arange(len(column.values), dtype=np.int64) - np.repeat(
                column.offsets[:-1], reps
            )
            values[np.repeat(seq_offsets[:-1] + prior, reps) + within] = column.values
            prior += column_lengths
        return values, seq_offsets


@register
class Bucketize(Transform):
    """Shard a feature into buckets based on sorted borders.

    Accepts a dense input (bucket of the value) or a sparse input
    (bucket of each ID) — production uses both spellings.
    """

    name = "Bucketize"
    op_class = OpClass.FEATURE_GENERATION
    cost = OpCost(cycles_per_element=18.0, mem_bytes_per_element=48.0)

    def __init__(self, input_id: int, borders: list[float]) -> None:
        if not borders or sorted(borders) != list(borders):
            raise TransformError("borders must be a non-empty sorted list")
        self._input_id = input_id
        self.borders = np.asarray(borders, dtype=np.float64)

    @property
    def input_ids(self) -> tuple[int, ...]:
        return (self._input_id,)

    def apply(self, batch: FeatureBatch) -> Column:
        column = batch.column(self._input_id)
        if isinstance(column, DenseColumn):
            buckets = np.searchsorted(self.borders, column.values, side="right")
            lists = [
                [int(b)] if present else []
                for b, present in zip(buckets, column.presence)
            ]
            return SparseColumn.from_lists(lists)
        buckets = np.searchsorted(self.borders, column.values, side="right")
        return SparseColumn(column.offsets.copy(), buckets.astype(np.int64))


@register
class GetLocalHour(Transform):
    """Local hour-of-day from a UTC epoch-seconds dense feature."""

    name = "GetLocalHour"
    op_class = OpClass.FEATURE_GENERATION
    cost = OpCost(cycles_per_element=8.0, mem_bytes_per_element=24.0)

    def __init__(self, input_id: int, utc_offset_hours: float = 0.0) -> None:
        if not -14 <= utc_offset_hours <= 14:
            raise TransformError("utc offset out of range")
        self._input_id = input_id
        self.utc_offset_hours = utc_offset_hours

    @property
    def input_ids(self) -> tuple[int, ...]:
        return (self._input_id,)

    def apply(self, batch: FeatureBatch) -> Column:
        column = batch.dense(self._input_id)
        local = column.values.astype(np.float64) + self.utc_offset_hours * 3_600.0
        hours = np.mod(np.floor(local / 3_600.0), 24.0)
        return DenseColumn(hours.astype(np.float32), column.presence.copy())


@register
class Sampling(Transform):
    """Randomly keep each row with probability *rate*.

    The output is a dense 0/1 keep-mask column; batch-level executors
    apply it as a row filter.  Deterministic under the given seed.
    """

    name = "Sampling"
    op_class = OpClass.FILTERING
    cost = OpCost(cycles_per_element=2.0, mem_bytes_per_element=8.0)

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0 < rate <= 1:
            raise TransformError("sampling rate must be in (0, 1]")
        self.rate = rate
        self.seed = seed

    @property
    def input_ids(self) -> tuple[int, ...]:
        return ()

    def apply(self, batch: FeatureBatch) -> Column:
        rng = np.random.default_rng(self.seed)
        keep = rng.random(batch.n_rows) < self.rate
        return DenseColumn(keep.astype(np.float32), np.ones(batch.n_rows, dtype=bool))

    def input_elements(self, batch: FeatureBatch) -> int:
        return batch.n_rows
