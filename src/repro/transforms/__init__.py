"""Online preprocessing transforms (Table 11) over columnar batches."""

from .acceleration import (
    GPU_KERNEL_SPEEDUP,
    OpWorkload,
    PlacementDecision,
    PlacementPlan,
    batching_speedup,
    place_workloads,
)
from .base import OpClass, OpCost, Transform, op_by_name, register, registered_ops
from .batch import Column, DenseColumn, FeatureBatch, SparseColumn
from .cost import CostReport, estimate_dag_cost, execute_with_cost
from .dag import DagNode, TransformDag
from .dense import BoxCox, Clamp, Logit, Onehot
from .generation import Bucketize, Cartesian, GetLocalHour, NGram, Sampling
from .sparse import (
    ComputeScore,
    Enumerate,
    FirstX,
    IdListTransform,
    MapId,
    PositiveModulus,
    SigridHash,
    splitmix64,
)

__all__ = [
    "GPU_KERNEL_SPEEDUP",
    "OpWorkload",
    "PlacementDecision",
    "PlacementPlan",
    "batching_speedup",
    "place_workloads",
    "BoxCox",
    "Bucketize",
    "Cartesian",
    "Clamp",
    "Column",
    "ComputeScore",
    "CostReport",
    "DagNode",
    "DenseColumn",
    "Enumerate",
    "FeatureBatch",
    "FirstX",
    "GetLocalHour",
    "IdListTransform",
    "Logit",
    "MapId",
    "NGram",
    "Onehot",
    "OpClass",
    "OpCost",
    "PositiveModulus",
    "Sampling",
    "SigridHash",
    "SparseColumn",
    "Transform",
    "TransformDag",
    "estimate_dag_cost",
    "execute_with_cost",
    "op_by_name",
    "register",
    "registered_ops",
    "splitmix64",
]
