"""Sparse feature normalization ops.

SigridHash, FirstX, PositiveModulus, MapId, Enumerate, ComputeScore, and
IdListTransform operate on categorical ID lists; they are the middle
cost class (~20% of transform cycles, Section 6.4).
"""

from __future__ import annotations

import numpy as np

from ..common.errors import TransformError
from .base import OpClass, OpCost, Transform, register
from .batch import Column, FeatureBatch, SparseColumn


class _SparseUnary(Transform):
    """Shared plumbing for single-input sparse ops."""

    op_class = OpClass.SPARSE_NORMALIZATION
    cost = OpCost(cycles_per_element=8.0, mem_bytes_per_element=24.0)

    def __init__(self, input_id: int) -> None:
        self._input_id = input_id

    @property
    def input_ids(self) -> tuple[int, ...]:
        return (self._input_id,)

    def _input(self, batch: FeatureBatch) -> SparseColumn:
        return batch.sparse(self._input_id)


def splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer — a real, well-mixed 64-bit hash."""
    x = values.astype(np.uint64)
    with np.errstate(over="ignore"):
        x = (x + np.uint64(0x9E3779B97F4A7C15)) & np.uint64(0xFFFFFFFFFFFFFFFF)
        x = ((x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & np.uint64(
            0xFFFFFFFFFFFFFFFF
        )
        x = ((x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & np.uint64(
            0xFFFFFFFFFFFFFFFF
        )
        x = x ^ (x >> np.uint64(31))
    return x


@register
class SigridHash(_SparseUnary):
    """Hash categorical IDs into a fixed embedding-table range."""

    name = "SigridHash"
    cost = OpCost(cycles_per_element=12.0, mem_bytes_per_element=24.0)

    def __init__(self, input_id: int, table_size: int, salt: int = 0) -> None:
        super().__init__(input_id)
        if table_size <= 0:
            raise TransformError("table_size must be positive")
        self.table_size = table_size
        self.salt = salt

    def apply(self, batch: FeatureBatch) -> Column:
        column = self._input(batch)
        hashed = splitmix64(column.values + np.int64(self.salt))
        values = (hashed % np.uint64(self.table_size)).astype(np.int64)
        weights = None if column.weights is None else column.weights.copy()
        return SparseColumn(column.offsets.copy(), values, weights)


@register
class FirstX(_SparseUnary):
    """Truncate each ID list to its first *x* elements."""

    name = "FirstX"
    cost = OpCost(cycles_per_element=4.0, mem_bytes_per_element=16.0)

    def __init__(self, input_id: int, x: int) -> None:
        super().__init__(input_id)
        if x < 0:
            raise TransformError("x must be non-negative")
        self.x = x

    def apply(self, batch: FeatureBatch) -> Column:
        column = self._input(batch)
        lengths = np.minimum(column.lengths(), self.x)
        offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
        keep = np.concatenate(
            [
                np.arange(column.offsets[i], column.offsets[i] + lengths[i])
                for i in range(len(column))
            ]
        ).astype(np.int64) if len(column) else np.empty(0, dtype=np.int64)
        values = column.values[keep]
        weights = None if column.weights is None else column.weights[keep]
        return SparseColumn(offsets, values, weights)


@register
class PositiveModulus(_SparseUnary):
    """``((v % m) + m) % m`` — always-positive remainder of each ID."""

    name = "PositiveModulus"
    cost = OpCost(cycles_per_element=5.0, mem_bytes_per_element=24.0)

    def __init__(self, input_id: int, modulus: int) -> None:
        super().__init__(input_id)
        if modulus <= 0:
            raise TransformError("modulus must be positive")
        self.modulus = modulus

    def apply(self, batch: FeatureBatch) -> Column:
        column = self._input(batch)
        values = np.mod(column.values, self.modulus)  # numpy % is already positive
        weights = None if column.weights is None else column.weights.copy()
        return SparseColumn(column.offsets.copy(), values.astype(np.int64), weights)


@register
class MapId(_SparseUnary):
    """Map feature IDs to fixed values through a lookup table."""

    name = "MapId"
    cost = OpCost(cycles_per_element=10.0, mem_bytes_per_element=32.0)

    def __init__(self, input_id: int, mapping: dict[int, int], default: int = 0) -> None:
        super().__init__(input_id)
        self.mapping = dict(mapping)
        self.default = default

    def apply(self, batch: FeatureBatch) -> Column:
        column = self._input(batch)
        values = np.fromiter(
            (self.mapping.get(int(v), self.default) for v in column.values),
            dtype=np.int64,
            count=len(column.values),
        )
        weights = None if column.weights is None else column.weights.copy()
        return SparseColumn(column.offsets.copy(), values, weights)


@register
class Enumerate(_SparseUnary):
    """Replace each ID with its position in the list — Python ``enumerate``."""

    name = "Enumerate"
    cost = OpCost(cycles_per_element=3.0, mem_bytes_per_element=16.0)

    def apply(self, batch: FeatureBatch) -> Column:
        column = self._input(batch)
        positions = np.concatenate(
            [np.arange(n, dtype=np.int64) for n in column.lengths()]
        ) if len(column.values) else np.empty(0, dtype=np.int64)
        weights = None if column.weights is None else column.weights.copy()
        return SparseColumn(column.offsets.copy(), positions, weights)


@register
class ComputeScore(Transform):
    """Arithmetic over the score weights of a scored-sparse feature.

    Produces a new scored column whose weights are ``scale * w + bias``
    — the paper's "arithmetic operations on sparse features".
    """

    name = "ComputeScore"
    op_class = OpClass.SPARSE_NORMALIZATION
    cost = OpCost(cycles_per_element=6.0, mem_bytes_per_element=24.0)

    def __init__(self, input_id: int, scale: float = 1.0, bias: float = 0.0) -> None:
        self._input_id = input_id
        self.scale = scale
        self.bias = bias

    @property
    def input_ids(self) -> tuple[int, ...]:
        return (self._input_id,)

    def apply(self, batch: FeatureBatch) -> Column:
        column = batch.sparse(self._input_id)
        if column.weights is None:
            raise TransformError(
                f"ComputeScore requires a scored feature, {self._input_id} has no weights"
            )
        weights = column.weights * self.scale + self.bias
        return SparseColumn(
            column.offsets.copy(), column.values.copy(), weights.astype(np.float32)
        )


@register
class IdListTransform(Transform):
    """Per-row intersection of two sparse features' ID lists."""

    name = "IdListTransform"
    op_class = OpClass.SPARSE_NORMALIZATION
    cost = OpCost(cycles_per_element=14.0, mem_bytes_per_element=40.0)

    def __init__(self, left_id: int, right_id: int) -> None:
        self._left_id = left_id
        self._right_id = right_id

    @property
    def input_ids(self) -> tuple[int, ...]:
        return (self._left_id, self._right_id)

    def apply(self, batch: FeatureBatch) -> Column:
        left = batch.sparse(self._left_id)
        right = batch.sparse(self._right_id)
        lists = []
        for i in range(len(left)):
            right_set = set(map(int, right.row(i)))
            seen: set[int] = set()
            intersection = []
            for v in map(int, left.row(i)):
                if v in right_set and v not in seen:
                    intersection.append(v)
                    seen.add(v)
            lists.append(intersection)
        return SparseColumn.from_lists(lists)
