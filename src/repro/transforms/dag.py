"""Per-feature transform DAGs.

Section 7.2: "a single feature X may require a DAG of multiple
operations that apply Bucketize to feature A, apply FirstX to feature B,
compute the Ngram of the intermediate values, and apply SigridHash to
generate feature X."  A :class:`TransformDag` is exactly that: nodes
producing intermediate or output feature IDs, executed in topological
order over a batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import TransformError
from .base import Transform
from .batch import FeatureBatch


@dataclass(frozen=True)
class DagNode:
    """One op application producing a new feature column."""

    output_id: int
    op: Transform


@dataclass
class TransformDag:
    """A set of op nodes over raw and intermediate feature columns."""

    nodes: list[DagNode] = field(default_factory=list)

    def add(self, output_id: int, op: Transform) -> "TransformDag":
        """Append a node; returns self for chaining."""
        if any(node.output_id == output_id for node in self.nodes):
            raise TransformError(f"duplicate output feature {output_id}")
        self.nodes.append(DagNode(output_id, op))
        return self

    def output_ids(self) -> list[int]:
        """Feature IDs this DAG produces."""
        return [node.output_id for node in self.nodes]

    def required_raw_inputs(self) -> set[int]:
        """Raw feature IDs the DAG consumes (inputs not produced by nodes)."""
        produced = set(self.output_ids())
        required: set[int] = set()
        for node in self.nodes:
            required |= set(node.op.input_ids) - produced
        return required

    def compile(self) -> list[DagNode]:
        """Topologically order the nodes; raises on cycles.

        Node inputs may be raw features (assumed present in the batch)
        or other nodes' outputs.
        """
        produced = {node.output_id: node for node in self.nodes}
        ordered: list[DagNode] = []
        state: dict[int, int] = {}  # 0 = unvisited, 1 = visiting, 2 = done

        def visit(node: DagNode) -> None:
            mark = state.get(node.output_id, 0)
            if mark == 2:
                return
            if mark == 1:
                raise TransformError(
                    f"cycle through derived feature {node.output_id}"
                )
            state[node.output_id] = 1
            for input_id in node.op.input_ids:
                dependency = produced.get(input_id)
                if dependency is not None:
                    visit(dependency)
            state[node.output_id] = 2
            ordered.append(node)

        for node in self.nodes:
            visit(node)
        return ordered

    def execute(self, batch: FeatureBatch) -> FeatureBatch:
        """Run every node in dependency order, attaching outputs to *batch*."""
        for node in self.compile():
            batch.add_column(node.output_id, node.op.apply(batch))
        return batch

    def __len__(self) -> int:
        return len(self.nodes)
