"""Cost accounting for transform execution.

The paper characterizes preprocessing by where CPU cycles and memory
bandwidth go (Figure 9, Section 6.3/6.4).  Python wall-clock is not a
faithful proxy for optimized C++ kernels, so we charge costs
analytically: every op application charges
``elements × cycles_per_element`` CPU cycles and
``elements × mem_bytes_per_element`` DRAM traffic, using the per-op
constants declared in each Transform class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import TransformError
from ..common.serialization import ReportBase, require_keys
from .base import OpClass, Transform
from .batch import FeatureBatch
from .dag import TransformDag


@dataclass
class CostReport(ReportBase):
    """Accumulated work for one or more op applications."""

    report_kind = "cost"

    cycles: float = 0.0
    mem_bytes: float = 0.0
    cycles_by_class: dict[OpClass, float] = field(
        default_factory=lambda: {cls: 0.0 for cls in OpClass}
    )
    elements: int = 0

    def charge(self, op: Transform, elements: int) -> None:
        """Charge one op application over *elements* input elements."""
        cycles = op.cost.cycles_per_element * elements
        self.cycles += cycles
        self.mem_bytes += op.cost.mem_bytes_per_element * elements
        self.cycles_by_class[op.op_class] += cycles
        self.elements += elements

    def merge(self, other: "ReportBase") -> "CostReport":
        """Accumulate another report into this one (returns self)."""
        if not isinstance(other, CostReport):
            raise TransformError("can only merge CostReport into CostReport")
        self.cycles += other.cycles
        self.mem_bytes += other.mem_bytes
        self.elements += other.elements
        for cls, cycles in other.cycles_by_class.items():
            self.cycles_by_class[cls] += cycles
        return self

    # -- shared telemetry surface ----------------------------------------------

    def payload(self) -> dict:
        return {
            "cycles": self.cycles,
            "mem_bytes": self.mem_bytes,
            "elements": self.elements,
            "cycles_by_class": {
                cls.value: cycles for cls, cycles in self.cycles_by_class.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CostReport":
        require_keys(
            payload,
            required=("cycles", "mem_bytes", "elements", "cycles_by_class"),
            context="cost report",
        )
        by_class = {op_class: 0.0 for op_class in OpClass}
        for name, cycles in payload["cycles_by_class"].items():
            by_class[OpClass(name)] = float(cycles)
        return cls(
            cycles=float(payload["cycles"]),
            mem_bytes=float(payload["mem_bytes"]),
            cycles_by_class=by_class,
            elements=int(payload["elements"]),
        )

    def metrics(self) -> dict[str, float]:
        flat = {
            "cost.cycles": self.cycles,
            "cost.mem_bytes": self.mem_bytes,
            "cost.elements": float(self.elements),
        }
        for op_class, share in self.class_shares().items():
            flat[f"cost.share.{op_class.value}"] = share
        return flat

    def class_shares(self) -> dict[OpClass, float]:
        """Fraction of transform cycles per op class (Section 6.4)."""
        total = sum(self.cycles_by_class.values())
        if total == 0:
            return {cls: 0.0 for cls in OpClass}
        return {cls: cycles / total for cls, cycles in self.cycles_by_class.items()}


def execute_with_cost(dag: TransformDag, batch: FeatureBatch) -> CostReport:
    """Execute *dag* on *batch* while charging the cost model."""
    report = CostReport()
    for node in dag.compile():
        elements = node.op.input_elements(batch)
        batch.add_column(node.output_id, node.op.apply(batch))
        report.charge(node.op, elements)
    return report


def estimate_dag_cost(dag: TransformDag, batch: FeatureBatch) -> CostReport:
    """Charge costs without mutating the batch (planning mode).

    Input element counts for derived inputs are approximated by the raw
    inputs feeding them, which is exact for normalization chains and a
    mild underestimate for expansion ops.
    """
    report = CostReport()
    for node in dag.compile():
        elements = 0
        for fid in node.op.input_ids:
            if fid in batch.columns:
                column = batch.columns[fid]
                elements += len(getattr(column, "values", [])) or batch.n_rows
            else:
                elements += batch.n_rows
        report.charge(node.op, max(elements, batch.n_rows))
    return report
