"""Cost accounting for transform execution.

The paper characterizes preprocessing by where CPU cycles and memory
bandwidth go (Figure 9, Section 6.3/6.4).  Python wall-clock is not a
faithful proxy for optimized C++ kernels, so we charge costs
analytically: every op application charges
``elements × cycles_per_element`` CPU cycles and
``elements × mem_bytes_per_element`` DRAM traffic, using the per-op
constants declared in each Transform class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .base import OpClass, Transform
from .batch import FeatureBatch
from .dag import TransformDag


@dataclass
class CostReport:
    """Accumulated work for one or more op applications."""

    cycles: float = 0.0
    mem_bytes: float = 0.0
    cycles_by_class: dict[OpClass, float] = field(
        default_factory=lambda: {cls: 0.0 for cls in OpClass}
    )
    elements: int = 0

    def charge(self, op: Transform, elements: int) -> None:
        """Charge one op application over *elements* input elements."""
        cycles = op.cost.cycles_per_element * elements
        self.cycles += cycles
        self.mem_bytes += op.cost.mem_bytes_per_element * elements
        self.cycles_by_class[op.op_class] += cycles
        self.elements += elements

    def merge(self, other: "CostReport") -> None:
        """Accumulate another report into this one."""
        self.cycles += other.cycles
        self.mem_bytes += other.mem_bytes
        self.elements += other.elements
        for cls, cycles in other.cycles_by_class.items():
            self.cycles_by_class[cls] += cycles

    def class_shares(self) -> dict[OpClass, float]:
        """Fraction of transform cycles per op class (Section 6.4)."""
        total = sum(self.cycles_by_class.values())
        if total == 0:
            return {cls: 0.0 for cls in OpClass}
        return {cls: cycles / total for cls, cycles in self.cycles_by_class.items()}


def execute_with_cost(dag: TransformDag, batch: FeatureBatch) -> CostReport:
    """Execute *dag* on *batch* while charging the cost model."""
    report = CostReport()
    for node in dag.compile():
        elements = node.op.input_elements(batch)
        batch.add_column(node.output_id, node.op.apply(batch))
        report.charge(node.op, elements)
    return report


def estimate_dag_cost(dag: TransformDag, batch: FeatureBatch) -> CostReport:
    """Charge costs without mutating the batch (planning mode).

    Input element counts for derived inputs are approximated by the raw
    inputs feeding them, which is exact for normalization chains and a
    mild underestimate for expansion ops.
    """
    report = CostReport()
    for node in dag.compile():
        elements = 0
        for fid in node.op.input_ids:
            if fid in batch.columns:
                column = batch.columns[fid]
                elements += len(getattr(column, "values", [])) or batch.n_rows
            else:
                elements += batch.n_rows
        report.charge(node.op, max(elements, batch.n_rows))
    return report
