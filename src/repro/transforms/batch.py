"""Columnar mini-batch representation used during preprocessing.

DPP workers operate on mini-batches, not whole tables (Section 3.2).
The in-memory layout here is the *flatmap* format the paper adopted
(Table 12, FM): each feature's values are contiguous across the batch's
rows — dense features as a value array plus presence mask, sparse
features as offsets + flat value arrays — matching both the DWRF
on-disk format and the final tensor format.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import TransformError
from ..warehouse.row import Row


@dataclass
class DenseColumn:
    """A dense feature across a batch: float values + presence mask."""

    values: np.ndarray  # float32, one per row; undefined where absent
    presence: np.ndarray  # bool, one per row

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float32)
        self.presence = np.asarray(self.presence, dtype=bool)
        if self.values.shape != self.presence.shape:
            raise TransformError("dense values and presence must align")

    def __len__(self) -> int:
        return len(self.values)

    def nbytes(self) -> int:
        """Resident bytes of the column."""
        return self.values.nbytes + self.presence.nbytes

    def copy(self) -> "DenseColumn":
        """Deep copy (transforms are functional)."""
        return DenseColumn(self.values.copy(), self.presence.copy())


@dataclass
class SparseColumn:
    """A sparse feature across a batch: ragged ID lists in flat form.

    ``offsets`` has ``n_rows + 1`` entries; row *i*'s IDs are
    ``values[offsets[i]:offsets[i+1]]``.  Rows that did not log the
    feature simply have an empty span.  ``weights``, when present,
    parallels ``values`` (the scored-sparse column type).
    """

    offsets: np.ndarray  # int64, n_rows + 1
    values: np.ndarray  # int64, total ids
    weights: np.ndarray | None = None  # float32, total ids

    def __post_init__(self) -> None:
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.int64)
        if self.offsets.ndim != 1 or len(self.offsets) == 0:
            raise TransformError("offsets must be a non-empty 1-D array")
        if self.offsets[0] != 0 or self.offsets[-1] != len(self.values):
            raise TransformError("offsets must start at 0 and end at len(values)")
        if np.any(np.diff(self.offsets) < 0):
            raise TransformError("offsets must be non-decreasing")
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=np.float32)
            if len(self.weights) != len(self.values):
                raise TransformError("weights must parallel values")

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def row(self, i: int) -> np.ndarray:
        """The ID list of row *i*."""
        return self.values[self.offsets[i] : self.offsets[i + 1]]

    def lengths(self) -> np.ndarray:
        """Per-row list lengths."""
        return np.diff(self.offsets)

    def nbytes(self) -> int:
        """Resident bytes of the column."""
        total = self.offsets.nbytes + self.values.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return total

    def copy(self) -> "SparseColumn":
        """Deep copy (transforms are functional)."""
        return SparseColumn(
            self.offsets.copy(),
            self.values.copy(),
            None if self.weights is None else self.weights.copy(),
        )

    @classmethod
    def from_lists(
        cls, lists: list[list[int]], weights: list[list[float]] | None = None
    ) -> "SparseColumn":
        """Build a column from per-row Python lists."""
        lengths = [len(ids) for ids in lists]
        offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
        values = np.fromiter(
            (v for ids in lists for v in ids), dtype=np.int64,
            count=int(offsets[-1]),
        )
        packed_weights = None
        if weights is not None:
            packed_weights = np.fromiter(
                (w for ws in weights for w in ws), dtype=np.float32,
                count=int(offsets[-1]),
            )
        return cls(offsets, values, packed_weights)

    def to_lists(self) -> list[list[int]]:
        """Per-row Python lists (testing convenience)."""
        return [list(map(int, self.row(i))) for i in range(len(self))]


Column = DenseColumn | SparseColumn


@dataclass
class FeatureBatch:
    """A mini-batch: labels plus named feature columns."""

    labels: np.ndarray
    columns: dict[int, Column] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels, dtype=np.float32)

    @property
    def n_rows(self) -> int:
        """Number of samples in the batch."""
        return len(self.labels)

    def column(self, feature_id: int) -> Column:
        """Look up a feature column."""
        try:
            return self.columns[feature_id]
        except KeyError:
            raise TransformError(f"batch has no feature {feature_id}") from None

    def dense(self, feature_id: int) -> DenseColumn:
        """Look up a column, asserting it is dense."""
        column = self.column(feature_id)
        if not isinstance(column, DenseColumn):
            raise TransformError(f"feature {feature_id} is not dense")
        return column

    def sparse(self, feature_id: int) -> SparseColumn:
        """Look up a column, asserting it is sparse."""
        column = self.column(feature_id)
        if not isinstance(column, SparseColumn):
            raise TransformError(f"feature {feature_id} is not sparse")
        return column

    def add_column(self, feature_id: int, column: Column) -> None:
        """Attach a (derived) feature column to the batch."""
        if len(column) != self.n_rows:
            raise TransformError(
                f"column of {len(column)} rows in a batch of {self.n_rows}"
            )
        self.columns[feature_id] = column

    def nbytes(self) -> int:
        """Resident bytes across labels and columns."""
        return self.labels.nbytes + sum(c.nbytes() for c in self.columns.values())

    @classmethod
    def from_rows(cls, rows: list[Row], feature_ids: list[int] | None = None) -> "FeatureBatch":
        """Materialize a batch from warehouse rows.

        *feature_ids* restricts which features become columns (the
        projection); by default every feature present in any row does.
        """
        if not rows:
            raise TransformError("cannot build a batch from zero rows")
        if feature_ids is None:
            seen: set[int] = set()
            for row in rows:
                seen |= row.feature_ids()
            feature_ids = sorted(seen)
        batch = cls(labels=np.array([row.label for row in rows], dtype=np.float32))
        for fid in feature_ids:
            sparse_rows = [row.sparse.get(fid) for row in rows]
            if any(ids is not None for ids in sparse_rows):
                lists = [ids if ids is not None else [] for ids in sparse_rows]
                has_weights = any(fid in row.scores for row in rows)
                weights = None
                if has_weights:
                    weights = [
                        row.scores.get(fid, [0.0] * len(lists[i]))
                        for i, row in enumerate(rows)
                    ]
                batch.add_column(fid, SparseColumn.from_lists(lists, weights))
            else:
                presence = np.array([fid in row.dense for row in rows], dtype=bool)
                if not presence.any():
                    continue
                values = np.array(
                    [row.dense.get(fid, 0.0) for row in rows], dtype=np.float32
                )
                batch.add_column(fid, DenseColumn(values, presence))
        return batch
