"""Transform abstraction, op classes, and the registry.

Section 6.4 splits DLRM preprocessing into three classes — dense
normalization, sparse normalization, and feature generation — which
consume roughly 5%, 20%, and 75% of transformation cycles.  Every op
declares its class and per-element work factors so the cost model
(:mod:`repro.transforms.cost`) can charge realistic CPU and memory
traffic for any transform DAG.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

from ..common.errors import TransformError
from .batch import Column, FeatureBatch


class OpClass(enum.Enum):
    """Cost class of an operator (Section 6.4)."""

    DENSE_NORMALIZATION = "dense_normalization"
    SPARSE_NORMALIZATION = "sparse_normalization"
    FEATURE_GENERATION = "feature_generation"
    FILTERING = "filtering"  # row sampling; outside the 75/20/5 split


@dataclass(frozen=True)
class OpCost:
    """Work factors used by the cost model.

    ``cycles_per_element`` is CPU cycles charged per input element and
    ``mem_bytes_per_element`` DRAM traffic per input element (reads +
    writes).  Values are relative calibration constants, chosen so the
    aggregate splits match Section 6.4; absolute wall-clock is carried
    by the hardware specs, not by these factors.
    """

    cycles_per_element: float
    mem_bytes_per_element: float


class Transform(abc.ABC):
    """One preprocessing operator over batch columns.

    Transforms are functional: they read input columns from the batch
    and *return* an output column; the DAG executor attaches outputs.
    """

    #: Operator name as it appears in Table 11.
    name: str = "abstract"
    op_class: OpClass = OpClass.FEATURE_GENERATION
    cost: OpCost = OpCost(cycles_per_element=10.0, mem_bytes_per_element=16.0)

    @property
    @abc.abstractmethod
    def input_ids(self) -> tuple[int, ...]:
        """Feature IDs this op reads."""

    @abc.abstractmethod
    def apply(self, batch: FeatureBatch) -> Column:
        """Compute the output column from the batch."""

    def input_elements(self, batch: FeatureBatch) -> int:
        """Number of input elements, the unit the cost model charges by."""
        total = 0
        for fid in self.input_ids:
            column = batch.column(fid)
            if hasattr(column, "values") and column.values.ndim == 1:
                total += len(column.values)
        return max(total, batch.n_rows)


_REGISTRY: dict[str, type[Transform]] = {}


def register(cls: type[Transform]) -> type[Transform]:
    """Class decorator adding an op to the global registry."""
    if cls.name in _REGISTRY:
        raise TransformError(f"duplicate op name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def op_by_name(name: str) -> type[Transform]:
    """Look up a registered op class by Table-11 name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise TransformError(f"unknown op {name!r}") from None


def registered_ops() -> dict[str, type[Transform]]:
    """A copy of the registry (name → class)."""
    return dict(_REGISTRY)
