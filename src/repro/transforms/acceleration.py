"""Transform acceleration: GPU/CPU placement and kernel batching (§7.2).

The paper measured an 11.9× GPU/CPU speedup for SigridHash but only
1.3× for Bucketize, and over three orders of magnitude between applying
one kernel to a tensor combining 1000 sparse features versus launching
per-feature kernels.  This module models those effects:

* per-op GPU amenability (speedup of the kernel itself);
* kernel-launch + host-to-device overhead charged per launch, which
  *kernel batching* amortizes across features;
* a placement optimizer choosing CPU or GPU per op for a workload, and
  quantifying how much batching changes the answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import TransformError
from .base import Transform

#: GPU kernel speedups over CPU for the ops the paper quantifies, with
#: conservative figures for the rest of Table 11 (hash-like ops
#: vectorize well; per-row ragged ops poorly).
GPU_KERNEL_SPEEDUP = {
    "SigridHash": 11.9,
    "Bucketize": 1.3,
    "NGram": 6.0,
    "Cartesian": 8.0,
    "PositiveModulus": 9.0,
    "MapId": 3.0,
    "FirstX": 1.5,
    "Enumerate": 2.0,
    "ComputeScore": 7.0,
    "IdListTransform": 1.2,
    "BoxCox": 5.0,
    "Logit": 5.0,
    "Clamp": 4.0,
    "Onehot": 3.0,
    "GetLocalHour": 2.5,
    "Sampling": 1.0,
}

#: Fixed cost of one kernel launch + host-to-device transfer, expressed
#: in CPU-cycle-equivalents.  Calibrated so that per-feature launches
#: over ~1000 small features are ~1000x slower than one combined
#: launch, the paper's observation.
KERNEL_LAUNCH_OVERHEAD_CYCLES = 2_000_000.0


@dataclass(frozen=True)
class OpWorkload:
    """One op applied over a feature set each batch."""

    op_name: str
    n_features: int  # features this op applies to per batch
    elements_per_feature: float  # values processed per feature per batch
    cpu_cycles_per_element: float = 10.0

    def __post_init__(self) -> None:
        if self.op_name not in GPU_KERNEL_SPEEDUP:
            raise TransformError(f"no GPU model for op {self.op_name!r}")
        if self.n_features < 1 or self.elements_per_feature <= 0:
            raise TransformError("workload must cover at least one element")

    @property
    def cpu_cycles(self) -> float:
        """Cycles per batch on the CPU."""
        return (
            self.n_features * self.elements_per_feature * self.cpu_cycles_per_element
        )

    def gpu_cycles(self, *, batched_kernel: bool) -> float:
        """Cycle-equivalents per batch on the GPU.

        *batched_kernel* applies one launch to a tensor combining all
        features; otherwise every feature pays its own launch.
        """
        kernel = self.cpu_cycles / GPU_KERNEL_SPEEDUP[self.op_name]
        launches = 1 if batched_kernel else self.n_features
        return kernel + launches * KERNEL_LAUNCH_OVERHEAD_CYCLES

    def gpu_speedup(self, *, batched_kernel: bool) -> float:
        """End-to-end GPU gain including launch overheads."""
        return self.cpu_cycles / self.gpu_cycles(batched_kernel=batched_kernel)


@dataclass(frozen=True)
class PlacementDecision:
    """The optimizer's choice for one op workload."""

    workload: OpWorkload
    device: str  # "cpu" or "gpu"
    cycles: float


@dataclass(frozen=True)
class PlacementPlan:
    """Placement for a whole workload mix."""

    decisions: list[PlacementDecision]

    @property
    def total_cycles(self) -> float:
        """Cycle-equivalents per batch under the plan."""
        return sum(d.cycles for d in self.decisions)

    def devices(self) -> dict[str, str]:
        """op name → chosen device."""
        return {d.workload.op_name: d.device for d in self.decisions}

    def speedup_over_cpu(self) -> float:
        """Gain over running everything on the CPU."""
        cpu = sum(d.workload.cpu_cycles for d in self.decisions)
        return cpu / self.total_cycles


def place_workloads(
    workloads: list[OpWorkload], *, batched_kernels: bool
) -> PlacementPlan:
    """Choose CPU or GPU per op to minimize cycle-equivalents.

    With per-feature launches, launch overhead pushes small-element ops
    back to the CPU; with batched kernels the GPU wins far more often —
    the paper's central point about accelerator APIs.
    """
    decisions = []
    for workload in workloads:
        gpu = workload.gpu_cycles(batched_kernel=batched_kernels)
        cpu = workload.cpu_cycles
        if gpu < cpu:
            decisions.append(PlacementDecision(workload, "gpu", gpu))
        else:
            decisions.append(PlacementDecision(workload, "cpu", cpu))
    return PlacementPlan(decisions)


def batching_speedup(workload: OpWorkload) -> float:
    """Gain from one combined kernel versus per-feature launches."""
    return workload.gpu_cycles(batched_kernel=False) / workload.gpu_cycles(
        batched_kernel=True
    )
