"""Dense feature normalization ops: BoxCox, Logit, Onehot, Clamp.

Dense normalization is the cheapest class (~5% of transform cycles,
Section 6.4): element-wise arithmetic over one float per row.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import TransformError
from .base import OpClass, OpCost, Transform, register
from .batch import Column, DenseColumn, FeatureBatch, SparseColumn


class _DenseUnary(Transform):
    """Shared plumbing for single-input dense ops."""

    op_class = OpClass.DENSE_NORMALIZATION
    cost = OpCost(cycles_per_element=4.0, mem_bytes_per_element=12.0)

    def __init__(self, input_id: int) -> None:
        self._input_id = input_id

    @property
    def input_ids(self) -> tuple[int, ...]:
        return (self._input_id,)

    def _input(self, batch: FeatureBatch) -> DenseColumn:
        return batch.dense(self._input_id)


@register
class BoxCox(_DenseUnary):
    """Box-Cox power transform for normalizing skewed dense features."""

    name = "BoxCox"

    def __init__(self, input_id: int, lmbda: float = 0.5) -> None:
        super().__init__(input_id)
        self.lmbda = lmbda

    def apply(self, batch: FeatureBatch) -> Column:
        column = self._input(batch)
        # Box-Cox requires positive inputs; shift so the minimum is 1.
        shifted = column.values - column.values.min() + 1.0
        if self.lmbda == 0.0:
            values = np.log(shifted)
        else:
            values = (np.power(shifted, self.lmbda) - 1.0) / self.lmbda
        return DenseColumn(values.astype(np.float32), column.presence.copy())


@register
class Logit(_DenseUnary):
    """Logit transform ``log(p / (1 - p))`` with clamping to (eps, 1-eps)."""

    name = "Logit"

    def __init__(self, input_id: int, eps: float = 1e-6) -> None:
        super().__init__(input_id)
        if not 0 < eps < 0.5:
            raise TransformError("eps must be in (0, 0.5)")
        self.eps = eps

    def apply(self, batch: FeatureBatch) -> Column:
        column = self._input(batch)
        p = np.clip(column.values, self.eps, 1.0 - self.eps)
        values = np.log(p / (1.0 - p))
        return DenseColumn(values.astype(np.float32), column.presence.copy())


@register
class Clamp(_DenseUnary):
    """Clamp dense values into [lo, hi] — same as ``std::clamp``."""

    name = "Clamp"
    cost = OpCost(cycles_per_element=2.0, mem_bytes_per_element=12.0)

    def __init__(self, input_id: int, lo: float, hi: float) -> None:
        super().__init__(input_id)
        if lo > hi:
            raise TransformError(f"clamp range inverted: [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    def apply(self, batch: FeatureBatch) -> Column:
        column = self._input(batch)
        values = np.clip(column.values, self.lo, self.hi)
        return DenseColumn(values.astype(np.float32), column.presence.copy())


@register
class Onehot(_DenseUnary):
    """One-hot encode a dense feature against bucket borders.

    The output is a sparse column with exactly one categorical ID per
    present row — the index of the half-open bucket the value falls in.
    """

    name = "Onehot"
    cost = OpCost(cycles_per_element=6.0, mem_bytes_per_element=20.0)

    def __init__(self, input_id: int, borders: list[float]) -> None:
        super().__init__(input_id)
        if not borders or sorted(borders) != list(borders):
            raise TransformError("borders must be a non-empty sorted list")
        self.borders = np.asarray(borders, dtype=np.float64)

    def apply(self, batch: FeatureBatch) -> Column:
        column = self._input(batch)
        buckets = np.searchsorted(self.borders, column.values, side="right")
        lists = [
            [int(bucket)] if present else []
            for bucket, present in zip(buckets, column.presence)
        ]
        return SparseColumn.from_lists(lists)
