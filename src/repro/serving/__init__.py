"""The live DPP service plane (Section 3.2 made load-testable).

A deterministic cooperative async kernel (:mod:`repro.serving.kernel`)
hosts DPP sessions behind real bounded queues: role-split extraction
and transform worker pools with independent autoscaling, an admission-
controlled trainer fetch queue with shed/retry policies, and an
open-loop arrival process — all on virtual time, so load tests are
reproducible artifacts like every other experiment in the repo.
"""

from .kernel import Kernel, KernelError, Queue, Task
from .plane import (
    ARRIVAL_MIXES,
    FEEDER_ID,
    FETCH_POLICIES,
    ExtractTask,
    FetchRequest,
    PlaneConfig,
    ServingPlane,
    TransformTask,
    WorkerPool,
)
from .report import PoolStats, QueueStats, ServingReport
from .scenario import ServingScenario

__all__ = [
    "ARRIVAL_MIXES",
    "FEEDER_ID",
    "FETCH_POLICIES",
    "ExtractTask",
    "FetchRequest",
    "Kernel",
    "KernelError",
    "PlaneConfig",
    "PoolStats",
    "Queue",
    "QueueStats",
    "ServingPlane",
    "ServingReport",
    "ServingScenario",
    "Task",
    "TransformTask",
    "WorkerPool",
]
