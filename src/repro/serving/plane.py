"""The live DPP service plane: role-split pools behind bounded queues.

This is the paper's disaggregation story made executable under load.
The synchronous :class:`~repro.dpp.service.DppSession` pump runs
extract → transform → load inside one worker per round; the plane
splits those phases across *independent* pools —

* the **feeder** pulls splits from the (replicated) master and
  enqueues extraction work, looping epochs over the table so a finite
  dataset feeds an unbounded open-loop fetch stream;
* **extraction workers** decode splits into feature batches and hand
  each to the transform queue as a linked child item (split/epoch/
  sequence provenance carried along);
* **transform workers** run the session DAG, tensorize, and deposit
  into the bounded ready queue;
* the **dispatcher** pairs trainer fetch requests with ready tensor
  batches, measuring per-request fetch latency in virtual time;
* an **admission controller** gates the trainer-facing fetch queue:
  a full backlog sheds the request or schedules a retry with
  exponential backoff, per the configured policy.

Each pool autoscales independently through its own
:class:`~repro.dpp.autoscaler.AutoscalingController`, keyed on its
*output* queue: a starved downstream queue means this stage is the
bottleneck (launch); a full one with idle workers means excess
capacity (drain).  Every queue hop, work item, and control decision is
driven by the deterministic kernel, so a run is a pure function of
(config, seed).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from ..common.errors import ConfigError
from ..common.simclock import SimClock
from ..datagen.serving import request_id_base
from ..dpp.autoscaler import AutoscalerConfig, AutoscalingController
from ..dpp.master import ReplicatedMaster
from ..dpp.worker import DppWorker
from ..telemetry.tracer import NULL_TRACER, Tracer
from ..transforms.batch import FeatureBatch
from .kernel import Kernel, Queue, Task
from .report import PoolStats, QueueStats, ServingReport

#: The feeder's master registration (splits are requested and completed
#: under this id; extraction workers act on its behalf).
FEEDER_ID = "feeder"

ARRIVAL_MIXES = ("steady", "bursty")
FETCH_POLICIES = ("shed", "retry")

#: Bursty mix: the arrival rate alternates between these multipliers on
#: a fixed phase, modelling synchronized trainer step boundaries.
_BURST_HIGH = 1.8
_BURST_LOW = 0.4
_BURST_PHASE_S = 5.0


@dataclass(frozen=True)
class PlaneConfig:
    """Every serving-plane knob, in one frozen bundle."""

    seed: int = 0
    host: str = "serving-plane"
    arrival_mix: str = "steady"
    rate_per_s: float = 200.0
    n_requests: int = 2_000
    fetch_policy: str = "shed"
    max_retries: int = 3
    retry_backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    fetch_queue_bound: int = 64
    extract_queue_bound: int = 8
    transform_queue_bound: int = 16
    ready_queue_bound: int = 32
    extract_workers: int = 2
    transform_workers: int = 1
    autoscale: bool = True
    max_pool_workers: int = 8
    control_period_s: float = 1.0
    cycles_per_s: float = 5.0e6
    feeder_poll_s: float = 0.01

    def __post_init__(self) -> None:
        if self.arrival_mix not in ARRIVAL_MIXES:
            raise ConfigError(
                f"arrival mix must be one of {ARRIVAL_MIXES}, "
                f"got {self.arrival_mix!r}"
            )
        if self.fetch_policy not in FETCH_POLICIES:
            raise ConfigError(
                f"fetch policy must be one of {FETCH_POLICIES}, "
                f"got {self.fetch_policy!r}"
            )
        if self.rate_per_s <= 0 or self.n_requests < 1:
            raise ConfigError("serving needs a positive rate and request count")
        if self.extract_workers < 1 or self.transform_workers < 1:
            raise ConfigError("each pool needs at least one worker")
        if self.cycles_per_s <= 0:
            raise ConfigError("cycles_per_s must be positive")
        if self.max_retries < 0 or self.retry_backoff_s <= 0:
            raise ConfigError("retry policy needs backoff > 0 and retries >= 0")


# -- work items ----------------------------------------------------------------


@dataclass
class FetchRequest:
    """One trainer fetch: arrival-stamped, retry-counted."""

    request_id: int
    arrival_s: float
    attempts: int = 0


@dataclass
class ExtractTask:
    """Parent work item: one split of one epoch, bound for extraction."""

    task_id: str
    epoch: int
    split: object  # dpp.split.Split


@dataclass
class TransformTask:
    """Child work item: one extracted batch, carrying its provenance."""

    task_id: str
    parent_id: str
    epoch: int
    split_id: int
    sequence: int
    batch: FeatureBatch


# -- worker pools --------------------------------------------------------------


class _Member:
    """One pool worker: a DppWorker plus its coroutine's lifecycle."""

    __slots__ = ("name", "worker", "task", "busy", "draining", "retired")

    def __init__(self, name: str, worker: DppWorker) -> None:
        self.name = name
        self.worker = worker
        self.task: Task | None = None
        self.busy = False
        self.draining = False
        self.retired = False


class WorkerPool:
    """A role-split pool with its own autoscaling controller.

    Scaling is keyed on the pool's *output* queue depth per worker:
    starved output means this stage bottlenecks the pipeline (launch);
    a full output queue with mostly-idle workers means excess capacity
    (drain).  Draining is graceful — the member finishes its current
    item; an idle (parked) member is cancelled outright, which is safe
    because ``busy`` is only False between items.
    """

    def __init__(
        self, plane: "ServingPlane", role: str, autoscaler: AutoscalerConfig
    ) -> None:
        self.plane = plane
        self.role = role
        self.controller = AutoscalingController(autoscaler)
        self.members: list[_Member] = []
        self.stats = PoolStats(role=role)
        self._ids = itertools.count()

    @property
    def active(self) -> list[_Member]:
        """Members still pulling work (launched, not draining/retired)."""
        return [
            m for m in self.members if not m.retired and not m.draining
        ]

    @property
    def size(self) -> int:
        return len(self.active)

    def launch(self) -> _Member:
        name = f"{self.role}-{next(self._ids)}"
        member = _Member(name, self.plane.build_worker(name))
        self.members.append(member)
        member.task = self.plane.kernel.spawn(
            self.plane.pool_loop(self, member), name
        )
        self.stats.launches += 1
        self.stats.peak = max(self.stats.peak, self.size)
        return member

    def drain_one(self) -> None:
        # Drain the youngest member (LIFO), matching scale-up order.
        for member in reversed(self.active):
            member.draining = True
            self.stats.drains += 1
            if not member.busy and member.task is not None:
                member.task.cancel()
                member.retired = True
            return

    def autoscale_tick(self, output_queue: Queue) -> int:
        n = self.size
        busy = sum(1 for m in self.active if m.busy)
        per_worker = output_queue.depth / n if n else 0.0
        utilization = busy / n if n else 0.0
        decision = self.controller.evaluate_uniform(n, per_worker, utilization)
        if decision.delta > 0:
            for _ in range(decision.delta):
                self.launch()
        elif decision.delta < 0:
            for _ in range(-decision.delta):
                self.drain_one()
        if decision.delta and self.plane.tracer.enabled:
            self.plane.tracer.instant(
                "pool.scale",
                actor="plane",
                role=self.role,
                delta=decision.delta,
                action=decision.action,
            )
        return decision.delta


# -- the plane -----------------------------------------------------------------


class ServingPlane:
    """One open-loop serving load test over a published table."""

    def __init__(
        self,
        config: PlaneConfig,
        master: ReplicatedMaster,
        worker_factory,
        clock: SimClock | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config
        self.master = master
        self._worker_factory = worker_factory
        self.kernel = Kernel(clock)
        self.clock = self.kernel.clock
        self.tracer = tracer or NULL_TRACER
        if self.tracer.enabled:
            self.tracer.bind_clock(lambda: self.clock.now)
            master.attach_tracer(self.tracer)
        master.register_worker(FEEDER_ID)

        kernel = self.kernel
        self.fetch_queue = Queue(kernel, config.fetch_queue_bound, "fetch")
        self.extract_queue = Queue(kernel, config.extract_queue_bound, "extract")
        self.transform_queue = Queue(
            kernel, config.transform_queue_bound, "transform"
        )
        self.ready_queue = Queue(kernel, config.ready_queue_bound, "ready")
        self._queues = (
            self.fetch_queue,
            self.extract_queue,
            self.transform_queue,
            self.ready_queue,
        )
        self._depth_sums = {q.name: 0.0 for q in self._queues}
        self._depth_samples = 0

        pool_autoscaler = AutoscalerConfig(
            max_workers=config.max_pool_workers,
            scale_up_step=1,
        )
        self.extract_pool = WorkerPool(self, "extract", pool_autoscaler)
        self.transform_pool = WorkerPool(self, "transform", pool_autoscaler)

        # Outcome counters (all virtual-time; the report is pure).
        self.arrivals = 0
        self.served = 0
        self.shed = 0
        self.retries = 0
        self.epochs = 1
        self.batches_produced = 0
        self.latencies_s: list[float] = []
        self._done = False
        self._request_base = request_id_base(config.host)

    # -- construction hooks ----------------------------------------------------

    def build_worker(self, name: str) -> DppWorker:
        worker = self._worker_factory(name)
        worker.tracer = self.tracer
        return worker

    def pool_loop(self, pool: WorkerPool, member: _Member):
        if pool.role == "extract":
            return self._extract_loop(member)
        return self._transform_loop(member)

    # -- arrivals and admission ------------------------------------------------

    def _gap_s(self, rng: np.random.Generator) -> float:
        rate = self.config.rate_per_s
        if self.config.arrival_mix == "bursty":
            phase = (self.clock.now / _BURST_PHASE_S) % 2.0
            rate *= _BURST_HIGH if phase < 1.0 else _BURST_LOW
        return float(rng.exponential(1.0 / rate))

    async def _arrival_loop(self):
        rng = np.random.default_rng(self.config.seed)
        for index in range(self.config.n_requests):
            await self.kernel.sleep(self._gap_s(rng))
            self.arrivals += 1
            request = FetchRequest(
                request_id=self._request_base + index,
                arrival_s=self.clock.now,
            )
            self._admit(request)

    def _admit(self, request: FetchRequest) -> None:
        """Admission control: enqueue, retry with backoff, or shed."""
        if self.fetch_queue.try_put(request):
            return
        config = self.config
        if (
            config.fetch_policy == "retry"
            and request.attempts < config.max_retries
        ):
            delay = config.retry_backoff_s * (
                config.backoff_multiplier**request.attempts
            )
            request.attempts += 1
            self.retries += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    "fetch.retry",
                    actor="admission",
                    request_id=request.request_id,
                    attempt=request.attempts,
                )
            self.clock.schedule(delay, lambda: self._admit(request))
            return
        self.shed += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "fetch.shed",
                actor="admission",
                request_id=request.request_id,
                attempts=request.attempts,
            )
        self._check_done()

    # -- the data plane --------------------------------------------------------

    async def _feeder_loop(self):
        """Pull splits and enqueue extraction work, looping epochs."""
        while True:
            split = self.master.request_split(FEEDER_ID)
            if split is None:
                if self.master.done:
                    self.master.begin_epoch()
                    self.epochs += 1
                    continue
                # Splits are all in flight; wait for completions.
                await self.kernel.sleep(self.config.feeder_poll_s)
                continue
            task = ExtractTask(
                task_id=f"e{self.epochs}-s{split.split_id}",
                epoch=self.epochs,
                split=split,
            )
            await self.extract_queue.put(task)

    async def _charge(self, worker: DppWorker, cycles_before: float) -> float:
        """Advance virtual time by the cycles charged since *before*."""
        cycles = worker.stats.usage.cpu_cycles
        delta = cycles - cycles_before
        if delta > 0:
            await self.kernel.sleep(delta / self.config.cycles_per_s)
        return cycles

    async def _extract_loop(self, member: _Member):
        worker = member.worker
        traced = self.tracer.enabled
        while not member.draining:
            task = await self.extract_queue.get()
            member.busy = True
            if traced:
                self.tracer.begin(
                    "extract.split",
                    actor=member.name,
                    task_id=task.task_id,
                    split_id=task.split.split_id,
                    epoch=task.epoch,
                )
            cycles = worker.stats.usage.cpu_cycles
            sequence = 0
            for batch in worker.extract_batches(task.split):
                cycles = await self._charge(worker, cycles)
                child = TransformTask(
                    task_id=f"{task.task_id}-b{sequence}",
                    parent_id=task.task_id,
                    epoch=task.epoch,
                    split_id=task.split.split_id,
                    sequence=sequence,
                    batch=batch,
                )
                sequence += 1
                await self.transform_queue.put(child)
            if traced:
                self.tracer.end(actor=member.name)
            # Completion is reported under the feeder's registration:
            # extraction workers act on the feeder's split lease.
            self.master.complete_split(FEEDER_ID, task.split.split_id)
            member.busy = False
        member.retired = True

    async def _transform_loop(self, member: _Member):
        worker = member.worker
        traced = self.tracer.enabled
        while not member.draining:
            item = await self.transform_queue.get()
            member.busy = True
            if traced:
                self.tracer.begin(
                    "transform.batch",
                    actor=member.name,
                    task_id=item.task_id,
                    parent_id=item.parent_id,
                    split_id=item.split_id,
                    sequence=item.sequence,
                )
            cycles = worker.stats.usage.cpu_cycles
            worker.transform_batch(item.batch)
            await self._charge(worker, cycles)
            tensors = worker.tensorize(item.batch, item.split_id, item.sequence)
            if traced:
                self.tracer.end(actor=member.name)
            self.batches_produced += 1
            await self.ready_queue.put(tensors)
            member.busy = False
        member.retired = True

    async def _dispatch_loop(self):
        """Pair admitted fetch requests with ready tensor batches."""
        traced = self.tracer.enabled
        while True:
            request = await self.fetch_queue.get()
            await self.ready_queue.get()
            latency = self.clock.now - request.arrival_s
            self.latencies_s.append(latency)
            self.served += 1
            if traced:
                self.tracer.instant(
                    "fetch.serve",
                    actor="dispatcher",
                    request_id=request.request_id,
                    latency_ms=1_000.0 * latency,
                )
            self._check_done()

    def _check_done(self) -> None:
        if (
            not self._done
            and self.arrivals == self.config.n_requests
            and self.served + self.shed == self.config.n_requests
        ):
            self._done = True

    # -- the control loop ------------------------------------------------------

    def _control_tick(self) -> None:
        if self._done:
            return
        self._depth_samples += 1
        traced = self.tracer.enabled
        for queue in self._queues:
            self._depth_sums[queue.name] += queue.depth
            if traced:
                self.tracer.counter(
                    f"serving.{queue.name}_queue.depth", queue.depth,
                    actor="plane",
                )
        if self.config.autoscale:
            self.extract_pool.autoscale_tick(self.transform_queue)
            self.transform_pool.autoscale_tick(self.ready_queue)

    # -- execution -------------------------------------------------------------

    def run(self) -> ServingReport:
        """Drive the load test to completion and seal the report."""
        config = self.config
        kernel = self.kernel
        for _ in range(config.extract_workers):
            self.extract_pool.launch()
        for _ in range(config.transform_workers):
            self.transform_pool.launch()
        self.extract_pool.stats.initial = config.extract_workers
        self.transform_pool.stats.initial = config.transform_workers
        kernel.spawn(self._feeder_loop(), "feeder")
        kernel.spawn(self._dispatch_loop(), "dispatcher")
        kernel.spawn(self._arrival_loop(), "arrivals")
        control = self.clock.every(config.control_period_s, self._control_tick)
        try:
            kernel.run(until=lambda: self._done)
        finally:
            control.cancel()
            kernel.cancel_all()
        return self._seal()

    def _seal(self) -> ServingReport:
        duration = self.clock.now
        samples = self._depth_samples
        queues = [
            QueueStats(
                name=queue.name,
                peak_depth=queue.peak_depth,
                mean_depth=(
                    self._depth_sums[queue.name] / samples if samples else 0.0
                ),
                total_enqueued=queue.total_enqueued,
            )
            for queue in self._queues
        ]
        for pool in (self.extract_pool, self.transform_pool):
            pool.stats.final = pool.size
            pool.stats.peak = max(pool.stats.peak, pool.size)
        return ServingReport.from_latencies(
            self.latencies_s,
            arrivals=self.arrivals,
            served=self.served,
            shed=self.shed,
            retries=self.retries,
            epochs=self.epochs,
            batches_produced=self.batches_produced,
            duration_s=duration,
            requests_per_s=self.served / duration if duration > 0 else 0.0,
            queues=queues,
            pools=[self.extract_pool.stats, self.transform_pool.stats],
        )
