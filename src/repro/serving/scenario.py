"""The serving scenario kind: an open-loop load test as an experiment.

:class:`ServingScenario` (``kind="serving"``) publishes a synthetic
table (seeded, so identical across runs and processes), wires a
replicated DPP master and role-split worker pools into a
:class:`~repro.serving.plane.ServingPlane`, and drives the configured
open-loop trainer fetch stream against it.  Like every scenario kind it
is a frozen dataclass, picklable, JSON-round-trippable, and fully
determined by its fields plus ``seed`` — the serving report and trace
are byte-identical across serial and pooled execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..common.errors import ConfigError
from ..common.serialization import require_keys
from ..experiments.base import Scenario
from ..telemetry.tracer import Tracer
from .plane import PlaneConfig, ServingPlane
from .report import ServingReport

#: The plane knobs the scenario forwards verbatim into PlaneConfig.
_PLANE_FIELDS = (
    "arrival_mix",
    "rate_per_s",
    "n_requests",
    "fetch_policy",
    "max_retries",
    "retry_backoff_s",
    "backoff_multiplier",
    "fetch_queue_bound",
    "extract_queue_bound",
    "transform_queue_bound",
    "ready_queue_bound",
    "extract_workers",
    "transform_workers",
    "autoscale",
    "max_pool_workers",
    "control_period_s",
    "cycles_per_s",
)

_FLOAT_FIELDS = (
    "rate_per_s",
    "retry_backoff_s",
    "backoff_multiplier",
    "control_period_s",
    "cycles_per_s",
)

_INT_FIELDS = (
    "n_requests",
    "max_retries",
    "fetch_queue_bound",
    "extract_queue_bound",
    "transform_queue_bound",
    "ready_queue_bound",
    "extract_workers",
    "transform_workers",
    "max_pool_workers",
    "n_partitions",
    "rows_per_partition",
    "batch_size",
    "table_seed",
)


@dataclass(frozen=True)
class ServingScenario(Scenario):
    """One open-loop serving load test over a synthetic table.

    ``seed`` drives the arrival process (and nothing else); the table
    contents come from ``table_seed`` so workload comparisons across
    seeds read the same data.  The request-ID base derives from the
    scenario name via :func:`~repro.datagen.serving.request_id_base`,
    sharing the logged-traffic ID space.
    """

    kind = "serving"

    name: str
    seed: int = 0
    arrival_mix: str = "steady"
    rate_per_s: float = 200.0
    n_requests: int = 2_000
    fetch_policy: str = "shed"
    max_retries: int = 3
    retry_backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    fetch_queue_bound: int = 64
    extract_queue_bound: int = 8
    transform_queue_bound: int = 16
    ready_queue_bound: int = 32
    extract_workers: int = 2
    transform_workers: int = 1
    autoscale: bool = True
    max_pool_workers: int = 8
    control_period_s: float = 1.0
    cycles_per_s: float = 5.0e6
    n_partitions: int = 2
    rows_per_partition: int = 256
    batch_size: int = 64
    table_seed: int = 7

    def __post_init__(self) -> None:
        if self.n_partitions < 1 or self.rows_per_partition < 1:
            raise ConfigError("serving scenario needs a non-empty table")
        # Delegate the plane-knob validation to PlaneConfig.
        self.plane_config()

    def plane_config(self) -> PlaneConfig:
        return PlaneConfig(
            seed=self.seed,
            host=self.name,
            **{name: getattr(self, name) for name in _PLANE_FIELDS},
        )

    # -- execution -------------------------------------------------------------

    def build_plane(self, tracer: "Tracer | None" = None) -> ServingPlane:
        """A plane over a freshly published synthetic table."""
        from ..dpp.master import ReplicatedMaster
        from ..dpp.spec import SessionSpec
        from ..dpp.worker import DppWorker, WorkerConfig
        from ..dwrf import EncodingOptions
        from ..tectonic import TectonicFilesystem
        from ..transforms import FirstX, Logit, SigridHash, TransformDag
        from ..warehouse import (
            DatasetProfile,
            SampleGenerator,
            Table,
            publish_table,
        )
        from ..warehouse.publish import partition_file_name

        profile = DatasetProfile(
            n_dense=10,
            n_sparse=5,
            n_scored=1,
            avg_coverage=0.6,
            avg_sparse_length=5.0,
        )
        generator = SampleGenerator(profile, seed=self.table_seed)
        schema = generator.build_schema("serving_scenario")
        table = Table(schema)
        generator.populate_table(
            table,
            [f"p{index}" for index in range(self.n_partitions)],
            self.rows_per_partition,
        )
        filesystem = TectonicFilesystem(n_nodes=6)
        footers = publish_table(
            filesystem, table, EncodingOptions(stripe_rows=64)
        )
        dense = [s.feature_id for s in schema if s.name.startswith("dense_")][:3]
        sparse = [s.feature_id for s in schema if s.name.startswith("sparse_")][:2]
        dag = TransformDag()
        dag.add(900, Logit(dense[0]))
        dag.add(901, FirstX(sparse[0], 8))
        dag.add(902, SigridHash(901, 10_000))
        # Splits reference Tectonic paths, so the master's spec and
        # footer map are keyed by path (as DppSession does internally).
        spec = SessionSpec(
            table_name=table.name,
            partitions=tuple(
                partition_file_name(table.name, p)
                for p in table.partition_names()
            ),
            projection=frozenset(dense + sparse),
            dag=dag,
            output_ids=(900, 902),
            batch_size=self.batch_size,
        )
        footers_by_path = {
            partition_file_name(table.name, partition): footer
            for partition, footer in footers.items()
        }
        master = ReplicatedMaster(spec, footers_by_path)
        worker_config = WorkerConfig()

        def factory(worker_id: str) -> DppWorker:
            return DppWorker(
                worker_id,
                master,
                filesystem,
                schema,
                footers_by_path,
                config=worker_config,
            )

        return ServingPlane(
            self.plane_config(), master, factory, tracer=tracer
        )

    def _execute(self, tracer: "Tracer | None") -> ServingReport:
        return self.build_plane(tracer).run()

    def run(self) -> ServingReport:
        return self._execute(None)

    def run_traced(self, tracer: "Tracer") -> ServingReport:
        """Run with *tracer* recording per-item spans, queue-depth
        gauges, and admission-control decisions in virtual time."""
        return self._execute(tracer)

    # -- serialization ---------------------------------------------------------

    def params(self) -> dict:
        out: dict = {"name": self.name, "seed": self.seed}
        for name in _PLANE_FIELDS:
            out[name] = getattr(self, name)
        for name in ("n_partitions", "rows_per_partition", "batch_size",
                     "table_seed"):
            out[name] = getattr(self, name)
        return out

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "ServingScenario":
        require_keys(
            params,
            required=("name",),
            optional=(
                "seed",
                "n_partitions",
                "rows_per_partition",
                "batch_size",
                "table_seed",
                *_PLANE_FIELDS,
            ),
            context="serving scenario",
        )
        kwargs: dict = {"name": params["name"], "seed": int(params.get("seed", 0))}
        defaults = cls(name="defaults")
        for name in _FLOAT_FIELDS:
            kwargs[name] = float(params.get(name, getattr(defaults, name)))
        for name in _INT_FIELDS:
            kwargs[name] = int(params.get(name, getattr(defaults, name)))
        for name in ("arrival_mix", "fetch_policy"):
            kwargs[name] = str(params.get(name, getattr(defaults, name)))
        kwargs["autoscale"] = bool(params.get("autoscale", defaults.autoscale))
        return cls(**kwargs)


def _register_builtin_entries() -> None:
    """Register the serving catalog entries (runs once at import).

    Lives here rather than in :mod:`repro.experiments.registry` so the
    class is guaranteed to exist before registration regardless of
    whether ``repro.serving`` or ``repro.experiments`` is imported
    first — the registry imports this module for its side effect.
    """
    from ..experiments.registry import register_scenario

    register_scenario(
        "serving/steady",
        "serving",
        "steady open-loop fetch stream within capacity: shed policy, "
        "admission control engaged but rarely shedding",
        lambda seed: ServingScenario(
            name=f"serving/steady/seed{seed}",
            seed=seed,
        ),
    )
    register_scenario(
        "serving/bursty",
        "serving",
        "bursty arrivals (synchronized trainer steps) under the "
        "retry-with-backoff fetch policy",
        lambda seed: ServingScenario(
            name=f"serving/bursty/seed{seed}",
            seed=seed,
            arrival_mix="bursty",
            fetch_policy="retry",
        ),
    )
    register_scenario(
        "serving/overload",
        "serving",
        "open-loop overload: arrivals outrun pipeline capacity, the "
        "fetch queue saturates, and admission control sheds",
        lambda seed: ServingScenario(
            name=f"serving/overload/seed{seed}",
            seed=seed,
            rate_per_s=2_000.0,
            fetch_queue_bound=32,
            max_pool_workers=4,
        ),
    )


_register_builtin_entries()
