"""The serving-plane load-test report.

Everything here is measured in *virtual* time, so a report is a pure
function of (scenario, seed): re-running the same load test — serially,
pooled, or on another machine — produces a byte-identical artifact.
Wall-clock throughput lives in ``benchmarks/perf``, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.serialization import (
    ReportBase,
    percentile,
    require_keys,
    revive_floats,
)

_FLOAT_FIELDS = (
    "duration_s",
    "requests_per_s",
    "fetch_p50_ms",
    "fetch_p99_ms",
    "fetch_p999_ms",
    "fetch_mean_ms",
)

#: Per-queue depth statistics rows carry these keys.
_QUEUE_KEYS = ("name", "peak_depth", "mean_depth", "total_enqueued")

#: Per-pool sizing rows carry these keys.
_POOL_KEYS = ("role", "initial", "peak", "final", "launches", "drains")


@dataclass
class QueueStats:
    """Backlog statistics for one bounded queue."""

    name: str
    peak_depth: int = 0
    mean_depth: float = 0.0
    total_enqueued: int = 0

    def to_row(self) -> dict:
        return {
            "name": self.name,
            "peak_depth": self.peak_depth,
            "mean_depth": self.mean_depth,
            "total_enqueued": self.total_enqueued,
        }

    @classmethod
    def from_row(cls, row: dict) -> "QueueStats":
        require_keys(row, required=_QUEUE_KEYS, context="queue stats")
        return cls(
            name=row["name"],
            peak_depth=int(row["peak_depth"]),
            mean_depth=float(row["mean_depth"]),
            total_enqueued=int(row["total_enqueued"]),
        )


@dataclass
class PoolStats:
    """Sizing history for one role-split worker pool."""

    role: str
    initial: int = 0
    peak: int = 0
    final: int = 0
    launches: int = 0
    drains: int = 0

    def to_row(self) -> dict:
        return {
            "role": self.role,
            "initial": self.initial,
            "peak": self.peak,
            "final": self.final,
            "launches": self.launches,
            "drains": self.drains,
        }

    @classmethod
    def from_row(cls, row: dict) -> "PoolStats":
        require_keys(row, required=_POOL_KEYS, context="pool stats")
        return cls(
            role=row["role"],
            initial=int(row["initial"]),
            peak=int(row["peak"]),
            final=int(row["final"]),
            launches=int(row["launches"]),
            drains=int(row["drains"]),
        )


@dataclass
class ServingReport(ReportBase):
    """One open-loop serving load test, summarized.

    ``arrivals == served + shed`` always holds on a completed run: every
    generated trainer fetch either got a tensor batch or was dropped by
    admission control (possibly after retries).  Latency percentiles
    use the repo's ceiling-index tail convention (see
    :func:`~repro.common.serialization.percentile`).
    """

    report_kind = "serving"

    arrivals: int = 0
    served: int = 0
    shed: int = 0
    retries: int = 0
    epochs: int = 0
    batches_produced: int = 0
    duration_s: float = 0.0
    requests_per_s: float = 0.0
    fetch_p50_ms: float = 0.0
    fetch_p99_ms: float = 0.0
    fetch_p999_ms: float = 0.0
    fetch_mean_ms: float = 0.0
    queues: list[QueueStats] = field(default_factory=list)
    pools: list[PoolStats] = field(default_factory=list)

    @classmethod
    def from_latencies(
        cls, latencies_s: list[float], **fields: object
    ) -> "ServingReport":
        """Build with the percentile block computed from raw latencies."""
        ms = [1_000.0 * v for v in latencies_s]
        return cls(
            fetch_p50_ms=percentile(ms, 50.0),
            fetch_p99_ms=percentile(ms, 99.0),
            fetch_p999_ms=percentile(ms, 99.9),
            fetch_mean_ms=sum(ms) / len(ms) if ms else float("nan"),
            **fields,  # type: ignore[arg-type]
        )

    # -- serialization ---------------------------------------------------------

    def payload(self) -> dict:
        return {
            "arrivals": self.arrivals,
            "served": self.served,
            "shed": self.shed,
            "retries": self.retries,
            "epochs": self.epochs,
            "batches_produced": self.batches_produced,
            "duration_s": self.duration_s,
            "requests_per_s": self.requests_per_s,
            "fetch_p50_ms": self.fetch_p50_ms,
            "fetch_p99_ms": self.fetch_p99_ms,
            "fetch_p999_ms": self.fetch_p999_ms,
            "fetch_mean_ms": self.fetch_mean_ms,
            "queues": [q.to_row() for q in self.queues],
            "pools": [p.to_row() for p in self.pools],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ServingReport":
        require_keys(
            payload,
            required=(
                "arrivals",
                "served",
                "shed",
                "retries",
                "epochs",
                "batches_produced",
                "queues",
                "pools",
                *_FLOAT_FIELDS,
            ),
            context="serving report",
        )
        revived = revive_floats(payload, _FLOAT_FIELDS)
        return cls(
            arrivals=int(revived["arrivals"]),
            served=int(revived["served"]),
            shed=int(revived["shed"]),
            retries=int(revived["retries"]),
            epochs=int(revived["epochs"]),
            batches_produced=int(revived["batches_produced"]),
            duration_s=revived["duration_s"],
            requests_per_s=revived["requests_per_s"],
            fetch_p50_ms=revived["fetch_p50_ms"],
            fetch_p99_ms=revived["fetch_p99_ms"],
            fetch_p999_ms=revived["fetch_p999_ms"],
            fetch_mean_ms=revived["fetch_mean_ms"],
            queues=[QueueStats.from_row(row) for row in revived["queues"]],
            pools=[PoolStats.from_row(row) for row in revived["pools"]],
        )

    # -- telemetry -------------------------------------------------------------

    def metrics(self) -> dict[str, float]:
        out = {
            "serving.arrivals": float(self.arrivals),
            "serving.served": float(self.served),
            "serving.shed": float(self.shed),
            "serving.retries": float(self.retries),
            "serving.epochs": float(self.epochs),
            "serving.requests_per_s": self.requests_per_s,
            "serving.fetch_p50_ms": self.fetch_p50_ms,
            "serving.fetch_p99_ms": self.fetch_p99_ms,
            "serving.fetch_p999_ms": self.fetch_p999_ms,
        }
        for queue in self.queues:
            out[f"serving.{queue.name}_peak_depth"] = float(queue.peak_depth)
        for pool in self.pools:
            out[f"serving.{pool.role}_pool_peak"] = float(pool.peak)
        return out

    def render(self) -> str:
        """Multi-line human summary for the CLI."""
        lines = [
            "serving load test",
            f"  requests      {self.arrivals} arrived, {self.served} served, "
            f"{self.shed} shed, {self.retries} retries",
            f"  sustained     {self.requests_per_s:.1f} req/s over "
            f"{self.duration_s:.1f}s virtual ({self.epochs} epochs, "
            f"{self.batches_produced} batches)",
            f"  fetch latency p50 {self.fetch_p50_ms:.2f} ms · "
            f"p99 {self.fetch_p99_ms:.2f} ms · "
            f"p999 {self.fetch_p999_ms:.2f} ms",
        ]
        for queue in self.queues:
            lines.append(
                f"  queue {queue.name:<10} peak {queue.peak_depth:>5} "
                f"mean {queue.mean_depth:>8.2f} "
                f"enqueued {queue.total_enqueued}"
            )
        for pool in self.pools:
            lines.append(
                f"  pool  {pool.role:<10} {pool.initial} -> {pool.final} "
                f"(peak {pool.peak}, +{pool.launches}/-{pool.drains})"
            )
        return "\n".join(lines)

    def describe(self) -> str:
        return self.render()
