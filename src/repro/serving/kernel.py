"""A deterministic cooperative async kernel over :class:`SimClock`.

The serving plane hosts long-running coroutines — arrival generators,
split feeders, role-split worker pools, a fetch dispatcher — that block
on queues and timers.  Stdlib ``asyncio`` cannot drive them: its event
loop runs on the wall clock and its ready-queue ordering is not part of
its contract, so two runs of the same seed could interleave
differently and break the repo's byte-identical determinism contract.

This kernel is the minimal replacement: plain ``async def`` coroutines
awaiting *trap* objects, advanced by an explicit run loop in strict
FIFO order, with every timer an event on the shared discrete-event
clock.  Execution order is a pure function of (spawn order, queue
arrival order, virtual timestamps), so serial and pooled runs of the
same scenario replay identically.

The bounded :class:`Queue` is the backpressure primitive: ``put``
parks the producer when the queue is full, ``try_put`` is the
non-blocking admission-control variant, and depth/peak counters feed
the per-queue telemetry gauges.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Coroutine

from ..common.errors import ReproError
from ..common.simclock import SimClock


class KernelError(ReproError):
    """A cooperative-scheduling invariant was violated (deadlock, ...)."""


class Task:
    """One spawned coroutine and its lifecycle flags."""

    __slots__ = ("coro", "name", "finished", "cancelled", "result")

    def __init__(self, coro: Coroutine, name: str) -> None:
        self.coro = coro
        self.name = name
        self.finished = False
        self.cancelled = False
        self.result: Any = None

    def cancel(self) -> None:
        """Stop the task; its ``finally`` blocks run, then it is done.

        Safe on finished tasks (no-op).  Parked tasks are simply never
        resumed again: the queues and timers skip finished tasks.
        """
        if self.finished:
            return
        self.finished = True
        self.cancelled = True
        self.coro.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "cancelled"
            if self.cancelled
            else "finished" if self.finished else "live"
        )
        return f"Task({self.name!r}, {state})"


class _Sleep:
    """Awaitable: park the task until *delay* virtual seconds pass."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        self.delay = delay

    def __await__(self):
        return (yield self)

    def block(self, kernel: "Kernel", task: Task) -> None:
        kernel.clock.schedule(self.delay, lambda: kernel.resume(task))


class _Park:
    """Awaitable: append the task to a waiter deque; woken externally."""

    __slots__ = ("waiters",)

    def __init__(self, waiters: deque) -> None:
        self.waiters = waiters

    def __await__(self):
        return (yield self)

    def block(self, kernel: "Kernel", task: Task) -> None:
        self.waiters.append(task)


class Kernel:
    """FIFO cooperative scheduler married to a discrete-event clock.

    The run loop drains the ready deque before firing the next clock
    event, so all consequences of one virtual instant settle before
    time advances — the async analogue of the clock's same-timestamp
    batched drain.
    """

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock or SimClock()
        self.tasks: list[Task] = []
        self._ready: deque[tuple[Task, Any]] = deque()

    # -- task management -------------------------------------------------------

    def spawn(self, coro: Coroutine, name: str) -> Task:
        """Register *coro* and schedule its first step."""
        task = Task(coro, name)
        self.tasks.append(task)
        self._ready.append((task, None))
        return task

    def resume(self, task: Task, value: Any = None) -> None:
        """Make a parked task runnable again (skips finished tasks)."""
        if not task.finished:
            self._ready.append((task, value))

    def sleep(self, delay: float) -> _Sleep:
        """Awaitable virtual-time sleep: ``await kernel.sleep(0.25)``."""
        return _Sleep(delay)

    @property
    def alive(self) -> int:
        """Number of spawned tasks not yet finished."""
        return sum(1 for task in self.tasks if not task.finished)

    # -- the run loop ----------------------------------------------------------

    def _advance(self, task: Task, value: Any) -> None:
        try:
            trap = task.coro.send(value)
        except StopIteration as stop:
            task.finished = True
            task.result = stop.value
            return
        trap.block(self, task)

    def run(self, until: Callable[[], bool] | None = None) -> None:
        """Drive tasks and clock until *until()* holds (or all finish).

        Raises :class:`KernelError` when tasks are parked but no clock
        event can ever wake them — a real deadlock (e.g. every producer
        blocked on a full queue whose consumers all exited).
        """
        ready = self._ready
        clock = self.clock
        while True:
            if until is not None and until():
                return
            if ready:
                task, value = ready.popleft()
                if not task.finished:
                    self._advance(task, value)
                continue
            if until is None and not self.alive:
                return
            if not clock.step():
                if self.alive:
                    parked = [t.name for t in self.tasks if not t.finished]
                    raise KernelError(
                        "deadlock: tasks parked with no pending events: "
                        f"{parked}"
                    )
                return

    def cancel_all(self) -> None:
        """Cancel every unfinished task (plane teardown)."""
        for task in self.tasks:
            task.cancel()
        self._ready.clear()


class Queue:
    """A bounded FIFO queue with parking producers and consumers.

    ``put``/``get`` are the blocking (backpressuring) endpoints;
    ``try_put`` is the admission-control edge: it never parks, it
    reports a full backlog to the caller, who sheds or schedules a
    retry.  Wakeups are FIFO and spurious-wakeup-safe (woken tasks
    re-check the predicate), so contention resolves deterministically.
    """

    def __init__(self, kernel: Kernel, capacity: int, name: str) -> None:
        if capacity < 1:
            raise KernelError(f"queue {name!r} needs capacity >= 1")
        self.kernel = kernel
        self.capacity = capacity
        self.name = name
        self._items: deque = deque()
        self._getters: deque[Task] = deque()
        self._putters: deque[Task] = deque()
        self.total_enqueued = 0
        self.peak_depth = 0
        self.shed = 0  # try_put rejections (admission-control drops)

    # -- observability ---------------------------------------------------------

    @property
    def depth(self) -> int:
        """Items currently queued (the backlog gauge)."""
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    # -- the endpoints ---------------------------------------------------------

    def _wake_one(self, waiters: deque[Task]) -> None:
        while waiters:
            task = waiters.popleft()
            if not task.finished:
                self.kernel.resume(task)
                return

    def _accept(self, item: Any) -> None:
        self._items.append(item)
        self.total_enqueued += 1
        if len(self._items) > self.peak_depth:
            self.peak_depth = len(self._items)
        self._wake_one(self._getters)

    def try_put(self, item: Any) -> bool:
        """Enqueue unless the backlog is at capacity; never parks."""
        if len(self._items) >= self.capacity:
            self.shed += 1
            return False
        self._accept(item)
        return True

    async def put(self, item: Any) -> None:
        """Enqueue, parking (backpressure) while the queue is full."""
        while len(self._items) >= self.capacity:
            await _Park(self._putters)
        self._accept(item)

    async def get(self) -> Any:
        """Dequeue the oldest item, parking while the queue is empty."""
        while not self._items:
            await _Park(self._getters)
        item = self._items.popleft()
        self._wake_one(self._putters)
        return item
