"""DPP session orchestration: wiring master, workers, and clients.

:class:`DppSession` is the façade FBLearner-Flow-launched jobs interact
with: it plans splits from published partition footers, spawns the
worker fleet, connects trainer clients, and pumps the data plane.  The
pump is synchronous and deterministic — a virtual scheduler standing in
for the distributed runtime — while all data movement (bytes decoded,
batches produced) is real.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..common.errors import DppError
from ..common.simclock import SimClock
from ..telemetry.tracer import NULL_TRACER, Tracer
from ..dwrf.layout import FileFooter
from ..tectonic.filesystem import TectonicFilesystem
from ..warehouse.publish import partition_file_name
from ..warehouse.schema import TableSchema
from .autoscaler import AutoscalerConfig, AutoscalingController, WorkerTelemetry
from .client import DppClient
from .master import ReplicatedMaster
from .spec import SessionSpec
from .tensors import TensorBatch
from .worker import DppWorker, WorkerConfig


@dataclass
class SessionReport:
    """Summary of a completed session."""

    rows_processed: int = 0
    batches_delivered: int = 0
    storage_rx_bytes: int = 0
    tensor_bytes_delivered: int = 0
    peak_workers: int = 0
    scaling_events: list[str] = field(default_factory=list)


class DppSession:
    """One training job's preprocessing session."""

    def __init__(
        self,
        spec: SessionSpec,
        filesystem: TectonicFilesystem,
        schema: TableSchema,
        partition_footers: dict[str, FileFooter],
        n_workers: int = 2,
        n_clients: int = 1,
        worker_config: WorkerConfig | None = None,
        autoscaler_config: AutoscalerConfig | None = None,
        clock: SimClock | None = None,
        round_time_s: float = 0.0,
    ) -> None:
        """*filesystem* may be any object with the Tectonic read surface
        (``read``/``fetcher``/``file``) — e.g. a fleet broker's
        bandwidth-throttled view.  When *clock* is given, each pump
        round advances it by *round_time_s*, letting externally
        scheduled events (broker rate updates, other sessions) fire
        between rounds of this session's data plane.
        """
        if n_workers < 1 or n_clients < 1:
            raise DppError("a session needs at least one worker and one client")
        if round_time_s < 0:
            raise DppError("round_time_s cannot be negative")
        self.spec = spec
        self.filesystem = filesystem
        self.clock = clock
        self.round_time_s = round_time_s
        self.schema = schema
        # Key footers by Tectonic path, which is what splits reference.
        self.footers = {
            partition_file_name(spec.table_name, partition): footer
            for partition, footer in partition_footers.items()
        }
        path_spec = SessionSpec(
            table_name=spec.table_name,
            partitions=tuple(
                partition_file_name(spec.table_name, p) for p in spec.partitions
            ),
            projection=spec.projection,
            dag=spec.dag,
            output_ids=spec.output_ids,
            batch_size=spec.batch_size,
            split_stripes=spec.split_stripes,
            coalesce_window=spec.coalesce_window,
            row_sample_rate=spec.row_sample_rate,
        )
        self.tracer: Tracer = NULL_TRACER
        self.master = ReplicatedMaster(path_spec, self.footers)
        self.worker_config = worker_config or WorkerConfig()
        self._worker_ids = itertools.count()
        self.workers: list[DppWorker] = [
            self._spawn_worker() for _ in range(n_workers)
        ]
        self.clients = [
            DppClient(f"client-{i}", self.workers) for i in range(n_clients)
        ]
        self.controller = AutoscalingController(autoscaler_config)
        self.report = SessionReport(peak_workers=n_workers)
        # Round-pump state (see begin_rounds/pump_round): kept on the
        # session so an external scheduler can drive rounds one at a
        # time without owning a local loop.
        self._delivered: list[TensorBatch] = []
        self._draining = False

    def _spawn_worker(self) -> DppWorker:
        worker = DppWorker(
            worker_id=f"worker-{next(self._worker_ids)}",
            master=self.master,
            filesystem=self.filesystem,
            schema=self.schema,
            footers=self.footers,
            config=self.worker_config,
        )
        worker.tracer = self.tracer
        return worker

    def attach_tracer(self, tracer: Tracer) -> None:
        """Report session activity through *tracer*.

        Covers the current master and workers plus everything spawned
        later (scale-ups, master restarts): spawn and restart paths
        re-read ``self.tracer``.
        """
        self.tracer = tracer
        self.master.attach_tracer(tracer)
        for worker in self.workers:
            worker.tracer = tracer

    # -- fleet management ------------------------------------------------------

    @property
    def live_workers(self) -> list[DppWorker]:
        """Workers actively pulling splits (alive and not draining)."""
        return [
            worker
            for worker in self.workers
            if worker.alive and not worker.draining
        ]

    @property
    def serving_workers(self) -> list[DppWorker]:
        """Workers clients may still pull from — including drainers
        serving out their buffers."""
        return [worker for worker in self.workers if worker.alive]

    def scale(self, delta: int) -> None:
        """Launch (+) or drain (−) workers and refresh client routing.

        Draining is graceful: the worker stops pulling splits but keeps
        serving until its buffer empties, at which point the pump
        retires it — no buffered batch is ever stranded by scale-down.
        """
        if delta > 0:
            for _ in range(delta):
                self.workers.append(self._spawn_worker())
        elif delta < 0:
            for worker in self.live_workers[: -delta]:
                worker.drain()
        for client in self.clients:
            client.refresh_partition()
        self.report.peak_workers = max(
            self.report.peak_workers, len(self.live_workers)
        )

    def restart_master(self) -> None:
        """Simulate a master-process restart: rebuild from the durable
        checkpoint (Section 3.2.1's recovery path).

        Because split sampling is process-stable, the rebuilt master
        plans the *identical* split set, so every checkpointed split ID
        resolves.  Workers re-register and re-bind; in-flight progress
        past the checkpoint replays (at-least-once).
        """
        checkpoint = self.master.checkpoint()
        replacement = ReplicatedMaster(self.master.primary.spec, self.footers)
        replacement.restore(checkpoint)
        replacement.attach_tracer(self.tracer)
        for worker in self.serving_workers:
            replacement.register_worker(worker.worker_id)
        self.master = replacement
        for worker in self.workers:
            worker.master = replacement
        if self.tracer.enabled:
            self.tracer.instant("master.restart", actor="master")

    def run_autoscaler(self) -> int:
        """Collect telemetry, evaluate the controller, apply the delta."""
        telemetry = []
        # Utilization proxies normalized against the busiest worker;
        # the executable pump has no wall clock, so relative load
        # stands in for absolute utilization.
        peak_cycles = max(
            (w.stats.usage.cpu_cycles for w in self.live_workers), default=1.0
        ) or 1.0
        for worker in self.live_workers:
            usage = worker.stats.usage
            telemetry.append(
                WorkerTelemetry(
                    worker_id=worker.worker_id,
                    buffered_batches=worker.buffered_batches,
                    cpu_utilization=usage.cpu_cycles / peak_cycles,
                    memory_utilization=0.0,
                    network_utilization=0.0,
                )
            )
        decision = self.controller.evaluate(telemetry)
        if decision.delta:
            if self.tracer.enabled:
                self.tracer.instant(
                    "session.scale",
                    actor="session",
                    delta=decision.delta,
                    action=decision.action,
                )
            self.scale(decision.delta)
            stamp = f"t={self.clock.now:.0f}s " if self.clock is not None else ""
            self.report.scaling_events.append(
                f"{stamp}{decision.action} {abs(decision.delta)}: {decision.reason}"
            )
        return decision.delta

    # -- the pump ----------------------------------------------------------------
    #
    # The pump is exposed as a non-blocking step API: begin_rounds()
    # resets per-run state, pump_round() executes exactly one fair
    # round and reports whether the session still has work, and
    # finish_rounds() seals the report.  The synchronous pump() below
    # is a thin adapter over those three calls; an external scheduler
    # (the asyncio serving plane, a co-simulated fleet) interleaves
    # pump_round() with its own events instead.

    def begin_rounds(self) -> None:
        """Reset the round-pump state for a fresh run."""
        self._delivered = []
        self._draining = False

    def pump_round(self) -> bool:
        """Execute one fair round; False once the session is complete.

        One round: every live worker processes one split, every client
        drains available batches, drained workers retire.  Raises if
        the session cannot finish (e.g. all workers dead and
        autoscaling disabled).
        """
        if self.master.done and not any(
            worker.buffer for worker in self.serving_workers
        ):
            return False
        if not self.master.done:
            # done can regress: a worker crash reopens splits whose
            # batches died unserved.  Re-arm the endgame widening so
            # the next completion re-evaluates the fan-out.
            self._draining = False
        elif not self._draining:
            # Endgame drain: widen every client's fan-out so no
            # worker's buffered tensors are stranded behind the
            # steady-state connection cap.  Drainers still serving
            # out count — their buffers are part of the session.
            self._draining = True
            for client in self.clients:
                client.max_connections = max(
                    client.max_connections, len(self.serving_workers)
                )
                client.refresh_partition()
        if not self.master.done and not self.live_workers:
            raise DppError("session stalled: no live workers")
        if self.clock is not None and self.round_time_s > 0:
            self.clock.run_until(self.clock.now + self.round_time_s)
        for worker in list(self.live_workers):
            if not self.master.done and worker.wants_work:
                worker.process_one_split()
        for client in self.clients:
            while True:
                batch = client.get_batch()
                if batch is None:
                    break
                self._delivered.append(batch)
        self.retire_drained_workers()
        return True

    def finish_rounds(self) -> SessionReport:
        """Seal and return the report for the rounds pumped so far."""
        self._finalize_report(self._delivered)
        return self.report

    def pump(self, max_rounds: int = 100_000) -> SessionReport:
        """Run the session to completion.

        Each round, every live worker processes one split and every
        client drains available batches — a fair round-robin scheduler.
        Raises if the session cannot finish (e.g. all workers dead and
        autoscaling disabled).
        """
        self.begin_rounds()
        for _ in range(max_rounds):
            if not self.pump_round():
                break
        else:
            raise DppError("pump exceeded max_rounds")
        return self.finish_rounds()

    def retire_drained_workers(self) -> None:
        """Retire drainers whose buffers clients have fully emptied."""
        retired = False
        for worker in self.workers:
            if worker.alive and worker.draining and not worker.buffer:
                worker.retire()
                retired = True
        if retired and self.serving_workers:
            for client in self.clients:
                client.refresh_partition()

    def _finalize_report(self, delivered: list[TensorBatch]) -> None:
        self.report.rows_processed = sum(
            worker.stats.rows_processed for worker in self.workers
        )
        self.report.batches_delivered = len(delivered)
        self.report.storage_rx_bytes = sum(
            worker.stats.storage_rx_bytes for worker in self.workers
        )
        self.report.tensor_bytes_delivered = sum(
            batch.wire_bytes() for batch in delivered
        )
