"""DPP: the disaggregated Data PreProcessing Service (Section 3.2)."""

from .autoscaler import (
    AutoscalerConfig,
    AutoscalingController,
    ScalingDecision,
    WorkerTelemetry,
)
from .client import ClientStats, DppClient
from .master import DppMaster, MasterCheckpoint, ReplicatedMaster
from .service import DppSession, SessionReport
from .simulation import (
    SimTickSample,
    SimulationConfig,
    SimulationResult,
    TimedDppSimulation,
)
from .spec import SessionSpec
from .split import Split, SplitState, plan_splits
from .tensors import TensorBatch
from .worker import DppWorker, ExtractCostModel, WorkerConfig, WorkerStats

__all__ = [
    "SimTickSample",
    "SimulationConfig",
    "SimulationResult",
    "TimedDppSimulation",
    "AutoscalerConfig",
    "AutoscalingController",
    "ClientStats",
    "DppClient",
    "DppMaster",
    "DppSession",
    "DppWorker",
    "ExtractCostModel",
    "MasterCheckpoint",
    "ReplicatedMaster",
    "ScalingDecision",
    "SessionReport",
    "SessionSpec",
    "Split",
    "SplitState",
    "TensorBatch",
    "WorkerConfig",
    "WorkerStats",
    "WorkerTelemetry",
    "plan_splits",
]
