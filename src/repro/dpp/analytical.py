"""Analytical DPP worker model: throughput and bottlenecks at scale.

The executable worker (:mod:`repro.dpp.worker`) measures real byte and
value counts at miniature scale.  Production-scale questions — Table 9's
per-worker QPS on C-v1, Figure 9's utilization breakdown, Section 6.3's
C-v2 memory-bandwidth projection — need a fluid model over the paper's
per-model byte volumes.  This module provides that model.

Calibration: four constants (extract cycles/byte, transform cycles/byte
scaled by each model's transform intensity, and the two memory-traffic
factors) plus standard saturation limits (NIC ~80% of line rate, DRAM
~70% of peak).  With these, the *measured inputs* from Table 9 (bytes
per sample per model) yield per-resource throughput bounds whose minima
land on the paper's observed QPS and — crucially — reproduce the
paper's *different bottleneck per model*: RM1 CPU/memory-bandwidth,
RM2 ingress NIC, RM3 memory capacity (thread-pool limited).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..common.errors import ConfigError
from ..common.units import GB
from ..workloads.hardware import ComputeNodeSpec
from ..workloads.models import ModelConfig

#: Extract cycles per uncompressed byte read from storage
#: (decrypt + decompress + stream decode).
EXTRACT_CYCLES_PER_BYTE = 8.0
#: Transform cycles per uncompressed byte at transform intensity 1.0.
TRANSFORM_CYCLES_PER_BYTE = 10.35
#: DRAM traffic per uncompressed byte in extract.
EXTRACT_MEM_BYTES_PER_BYTE = 10.58
#: DRAM traffic per uncompressed byte in transform at mem intensity 1.0.
TRANSFORM_MEM_BYTES_PER_BYTE = 21.4
#: DRAM traffic per wire byte received (TLS amplifies receive-path
#: memory traffic ~3x, Section 7.2, plus copies and deserialization).
NET_RX_MEM_BYTES_PER_WIRE_BYTE = 5.57
#: DRAM traffic per wire byte sent.
NET_TX_MEM_BYTES_PER_WIRE_BYTE = 3.84
#: Practical NIC ceiling as a fraction of line rate (Section 6.3: RM2
#: "requires ~10 Gbps of our current 12.5 Gbps NICs, reaching practical
#: NIC throughput limits").
NIC_SATURATION = 0.8
#: DRAM bandwidth ceiling (Section 6.2: "saturates at ~70% utilization").
MEM_BW_SATURATION = 0.7
#: Threads per core needed to cover I/O stalls and keep cores busy.
THREADS_PER_CORE_FOR_FULL_UTILIZATION = 3.0
#: Fraction of node DRAM usable by worker threads (rest: OS, buffers).
USABLE_MEMORY_FRACTION = 0.625


@dataclass(frozen=True)
class PerSampleCost:
    """Resource demand of preprocessing one sample of a given model."""

    storage_rx_bytes: float  # compressed, enters the NIC
    uncompressed_bytes: float  # after decode, drives CPU/memory work
    tensor_tx_bytes: float  # leaves the NIC toward trainers
    extract_cycles: float
    transform_cycles: float
    extract_mem_bytes: float
    transform_mem_bytes: float
    net_rx_mem_bytes: float
    net_tx_mem_bytes: float

    @property
    def total_cycles(self) -> float:
        """CPU cycles per sample across extract and transform."""
        return self.extract_cycles + self.transform_cycles

    @property
    def mem_bytes(self) -> float:
        """Total DRAM traffic per sample."""
        return (
            self.extract_mem_bytes
            + self.transform_mem_bytes
            + self.net_rx_mem_bytes
            + self.net_tx_mem_bytes
        )

    def mem_shares(self) -> dict[str, float]:
        """Where memory traffic goes — the Section 6.3 LLC-miss split."""
        total = self.mem_bytes
        return {
            "transformation": self.transform_mem_bytes / total,
            "extraction": self.extract_mem_bytes / total,
            "network_receive": self.net_rx_mem_bytes / total,
            "network_send": self.net_tx_mem_bytes / total,
        }


def per_sample_cost(model: ModelConfig) -> PerSampleCost:
    """Derive per-sample resource demand from the model's Table 9 row."""
    samples_per_s = model.dpp.kqps * 1_000
    storage_rx = model.dpp.storage_rx_gbs * GB / samples_per_s
    uncompressed = model.dpp.transform_rx_gbs * GB / samples_per_s
    tensor_tx = model.dpp.transform_tx_gbs * GB / samples_per_s
    extract_cycles = EXTRACT_CYCLES_PER_BYTE * uncompressed
    transform_cycles = (
        TRANSFORM_CYCLES_PER_BYTE * model.transform_intensity * uncompressed
    )
    return PerSampleCost(
        storage_rx_bytes=storage_rx,
        uncompressed_bytes=uncompressed,
        tensor_tx_bytes=tensor_tx,
        extract_cycles=extract_cycles,
        transform_cycles=transform_cycles,
        extract_mem_bytes=EXTRACT_MEM_BYTES_PER_BYTE * uncompressed,
        transform_mem_bytes=(
            TRANSFORM_MEM_BYTES_PER_BYTE
            * model.transform_mem_intensity
            * uncompressed
        ),
        net_rx_mem_bytes=NET_RX_MEM_BYTES_PER_WIRE_BYTE * storage_rx,
        net_tx_mem_bytes=NET_TX_MEM_BYTES_PER_WIRE_BYTE * tensor_tx,
    )


@dataclass(frozen=True)
class WorkerThroughput:
    """Per-resource throughput bounds for one (model, node) pair."""

    model: ModelConfig
    node: ComputeNodeSpec
    qps_cpu: float
    qps_mem_bw: float
    qps_nic_rx: float
    qps_nic_tx: float
    thread_limit_factor: float  # <1 when memory capacity caps the pool

    @property
    def qps(self) -> float:
        """Achievable samples/s: the minimum bound."""
        return min(self.qps_cpu, self.qps_mem_bw, self.qps_nic_rx, self.qps_nic_tx)

    @property
    def bottleneck(self) -> str:
        """Which resource binds; 'memory_capacity' when threads are capped."""
        bounds = {
            "cpu": self.qps_cpu,
            "mem_bw": self.qps_mem_bw,
            "nic_rx": self.qps_nic_rx,
            "nic_tx": self.qps_nic_tx,
        }
        binding = min(bounds, key=bounds.get)
        if binding == "cpu" and self.thread_limit_factor < 1.0:
            return "memory_capacity"
        return binding

    def utilization_at_qps(self, qps: float) -> dict[str, float]:
        """Per-resource utilization when running at *qps* samples/s.

        CPU and memory-bandwidth utilizations are fractions of raw
        capacity (not of the saturation-derated capacity), matching how
        the paper reports percentages.
        """
        cost = per_sample_cost(self.model)
        spec = self.node
        cpu_capacity = spec.physical_cores * spec.frequency_ghz * 1e9
        cpu_capacity *= self.thread_limit_factor
        return {
            "cpu": qps * cost.total_cycles / cpu_capacity,
            "mem_bw": qps * cost.mem_bytes / (spec.peak_mem_bw_gbs * GB),
            "nic_rx": qps * cost.storage_rx_bytes / (spec.nic_gbps * GB / 8),
            "nic_tx": qps * cost.tensor_tx_bytes / (spec.nic_gbps * GB / 8),
        }

    def cpu_breakdown_at_qps(self, qps: float) -> dict[str, float]:
        """Figure 9's CPU split: transformation / extraction / misc.

        Misc covers the runtime outside extract/transform kernels
        (RPC handling, memory management), charged at a fixed 12% of
        kernel cycles.
        """
        cost = per_sample_cost(self.model)
        spec = self.node
        cpu_capacity = spec.physical_cores * spec.frequency_ghz * 1e9
        cpu_capacity *= self.thread_limit_factor
        transform = qps * cost.transform_cycles / cpu_capacity
        extract = qps * cost.extract_cycles / cpu_capacity
        return {
            "transformation": transform,
            "extraction": extract,
            "misc": 0.12 * (transform + extract),
        }


def worker_throughput(model: ModelConfig, node: ComputeNodeSpec) -> WorkerThroughput:
    """Compute the per-resource QPS bounds of one worker."""
    cost = per_sample_cost(model)
    spec = node

    usable_memory = spec.memory_gb * 1e9 * USABLE_MEMORY_FRACTION
    working_set = model.working_set_mb_per_thread * 1e6
    threads_available = math.floor(usable_memory / working_set)
    if threads_available < 1:
        raise ConfigError(
            f"{model.name} working set does not fit a single thread on {node.name}"
        )
    threads_needed = spec.physical_cores * THREADS_PER_CORE_FOR_FULL_UTILIZATION
    thread_factor = min(1.0, threads_available / threads_needed)

    cpu_capacity = spec.physical_cores * spec.frequency_ghz * 1e9 * thread_factor
    mem_capacity = spec.peak_mem_bw_gbs * GB * MEM_BW_SATURATION
    nic_capacity = spec.nic_gbps * GB / 8 * NIC_SATURATION

    return WorkerThroughput(
        model=model,
        node=node,
        qps_cpu=cpu_capacity / cost.total_cycles,
        qps_mem_bw=mem_capacity / cost.mem_bytes,
        qps_nic_rx=nic_capacity / cost.storage_rx_bytes,
        qps_nic_tx=nic_capacity / cost.tensor_tx_bytes,
        thread_limit_factor=thread_factor,
    )


def workers_per_trainer(model: ModelConfig, node: ComputeNodeSpec) -> float:
    """Table 9's final column: workers needed per 8-GPU training node."""
    throughput = worker_throughput(model, node)
    demand_samples = model.trainer_bytes_per_s / per_sample_cost(model).tensor_tx_bytes
    return demand_samples / throughput.qps
