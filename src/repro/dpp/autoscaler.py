"""The auto-scaling controller of the DPP Master.

Section 3.2.1: the controller "collects utilization (CPU, memory, and
network) statistics and the number of buffered tensors from each DPP
Worker.  It then periodically evaluates scaling decisions, calculating
the number of DPP Workers to either drain or launch with the goal of
maintaining a non-zero number of buffered tensors ... and maximum CPU,
network, and memory utilization."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import DppError


@dataclass(frozen=True)
class WorkerTelemetry:
    """One worker's report to the controller."""

    worker_id: str
    buffered_batches: int
    cpu_utilization: float
    memory_utilization: float
    network_utilization: float

    @property
    def max_utilization(self) -> float:
        """Highest of the three resource utilizations."""
        return max(self.cpu_utilization, self.memory_utilization, self.network_utilization)


@dataclass(frozen=True)
class AutoscalerConfig:
    """Controller policy knobs.

    The controller scales *up* when buffers run dry (trainers are about
    to stall) and *drains* workers when buffers are comfortably full
    while the fleet runs underutilized (wasted capacity).
    """

    min_buffered_per_worker: float = 1.0
    drain_buffered_per_worker: float = 6.0
    low_utilization: float = 0.5
    scale_up_step: int = 2
    drain_step: int = 1
    min_workers: int = 1
    max_workers: int = 1_000

    def __post_init__(self) -> None:
        if self.min_buffered_per_worker < 0:
            raise DppError("min_buffered_per_worker cannot be negative")
        if self.drain_buffered_per_worker <= self.min_buffered_per_worker:
            raise DppError("drain threshold must exceed the scale-up threshold")
        if not 0 < self.low_utilization < 1:
            raise DppError("low_utilization must be in (0, 1)")
        if self.min_workers < 1 or self.max_workers < self.min_workers:
            raise DppError("invalid worker count bounds")
        if self.scale_up_step < 1 or self.drain_step < 1:
            raise DppError("steps must be at least 1")


@dataclass(frozen=True)
class ScalingDecision:
    """Outcome of one controller evaluation."""

    delta: int  # >0 launch, <0 drain, 0 hold
    reason: str

    @property
    def action(self) -> str:
        """'launch', 'drain', or 'hold'."""
        if self.delta > 0:
            return "launch"
        if self.delta < 0:
            return "drain"
        return "hold"


#: The steady-state outcome, shared across evaluations (immutable).
_HOLD = ScalingDecision(0, "buffers and utilization in band")


class AutoscalingController:
    """Evaluates worker telemetry into launch/drain decisions."""

    def __init__(self, config: AutoscalerConfig | None = None) -> None:
        self.config = config or AutoscalerConfig()
        self.decisions: list[ScalingDecision] = []

    def evaluate(self, telemetry: list[WorkerTelemetry]) -> ScalingDecision:
        """One control-loop iteration over the fleet's reports."""
        if not telemetry:
            decision = ScalingDecision(self.config.scale_up_step, "no live workers")
            self.decisions.append(decision)
            return decision
        n = len(telemetry)
        return self._decide(
            n,
            sum(t.buffered_batches for t in telemetry) / n,
            sum(t.max_utilization for t in telemetry) / n,
        )

    def evaluate_uniform(
        self, n_workers: int, buffered_batches: int, utilization: float
    ) -> ScalingDecision:
        """O(1) evaluation of a fleet whose workers report identically.

        Simulation planes (the fleet simulator, the timed session) model
        workers as a fluid: every worker in a job holds the same buffer
        depth and utilization, so materializing ``n_workers`` identical
        :class:`WorkerTelemetry` records per control period only to
        average them back together is pure overhead — it was the fleet
        simulator's hottest path.  This entry point feeds the aggregate
        straight into the same decision logic.
        """
        if n_workers <= 0:
            decision = ScalingDecision(self.config.scale_up_step, "no live workers")
            self.decisions.append(decision)
            return decision
        return self._decide(
            n_workers, float(buffered_batches), max(utilization, 0.0)
        )

    def _decide(
        self, n: int, buffered_per_worker: float, mean_utilization: float
    ) -> ScalingDecision:
        """The shared launch/drain policy over fleet-level aggregates."""
        config = self.config
        if (
            buffered_per_worker >= config.min_buffered_per_worker
            and (
                buffered_per_worker <= config.drain_buffered_per_worker
                or mean_utilization >= config.low_utilization
                or n <= config.min_workers
            )
        ):
            # Steady state: every healthy fleet takes this branch on
            # almost every evaluation, so it shares one immutable
            # decision instead of formatting a fresh one each period.
            self.decisions.append(_HOLD)
            return _HOLD
        if buffered_per_worker < config.min_buffered_per_worker:
            headroom = config.max_workers - n
            delta = min(config.scale_up_step, headroom)
            decision = ScalingDecision(
                delta,
                f"buffers low ({buffered_per_worker:.2f}/worker): trainers at risk of stalls",
            )
        else:
            drainable = n - config.min_workers
            decision = ScalingDecision(
                -min(config.drain_step, drainable),
                f"buffers full ({buffered_per_worker:.2f}/worker) and fleet "
                f"underutilized ({mean_utilization:.0%})",
            )
        self.decisions.append(decision)
        return decision
