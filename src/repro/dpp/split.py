"""Splits: self-contained work items over successive dataset rows.

The Master "breaks down the entire preprocessing workload ... into
independent and self-contained work items for the data plane called
splits that represent successive rows of the entire dataset"
(Section 3.2.1).  A split addresses a contiguous stripe range within
one partition's DWRF file.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..common.errors import DppError
from ..dwrf.layout import FileFooter


class SplitState(enum.Enum):
    """Lifecycle of a split inside the master."""

    PENDING = "pending"
    ASSIGNED = "assigned"
    COMPLETED = "completed"


@dataclass(frozen=True)
class Split:
    """One work item: stripes [stripe_start, stripe_end) of a file."""

    split_id: int
    file_name: str
    stripe_start: int
    stripe_end: int
    row_count: int

    def __post_init__(self) -> None:
        if self.stripe_start < 0 or self.stripe_end <= self.stripe_start:
            raise DppError(
                f"invalid stripe range [{self.stripe_start}, {self.stripe_end})"
            )
        if self.row_count <= 0:
            raise DppError("split must cover at least one row")

    @property
    def stripe_count(self) -> int:
        """Number of stripes in the split."""
        return self.stripe_end - self.stripe_start


def plan_splits(
    files: dict[str, FileFooter], split_stripes: int, first_id: int = 0
) -> list[Split]:
    """Partition the session's files into splits of *split_stripes* stripes.

    Files are walked in insertion order (chronological partitions) and
    stripes within a file in offset order, so split IDs respect dataset
    order — one epoch visits each sample exactly once (Section 5.1).
    """
    if split_stripes <= 0:
        raise DppError("split_stripes must be positive")
    splits: list[Split] = []
    next_id = first_id
    for file_name, footer in files.items():
        n_stripes = len(footer.stripes)
        for start in range(0, n_stripes, split_stripes):
            end = min(start + split_stripes, n_stripes)
            rows = sum(footer.stripes[i].row_count for i in range(start, end))
            splits.append(Split(next_id, file_name, start, end, rows))
            next_id += 1
    if not splits:
        raise DppError("session dataset contains no stripes")
    return splits
