"""Session specifications: what one training job asks DPP to do.

The DPP Master receives "a session specification (a PyTorchDataSet)
that reflects the preprocessing workload, containing the dataset table,
specific partitions, required features, and transformation operations
for each feature" (Section 3.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import DppError
from ..transforms.dag import TransformDag


@dataclass(frozen=True)
class SessionSpec:
    """Immutable description of one DPP preprocessing session.

    *projection* is the set of raw features read from storage (the
    column filter); *output_ids* the feature columns loaded as tensors
    — typically the DAG's derived outputs plus passthrough raw
    features.  *split_stripes* controls work-item granularity.
    """

    table_name: str
    partitions: tuple[str, ...]
    projection: frozenset[int]
    dag: TransformDag = field(default_factory=TransformDag)
    output_ids: tuple[int, ...] = ()
    batch_size: int = 512
    split_stripes: int = 1
    coalesce_window: int = 0
    # Row-sampling pushdown for exploratory jobs (Section 4.1: they use
    # "a small fraction (typically < 5%)" of the table).  Applied at
    # split granularity, so skipped samples are never even read from
    # storage.  1.0 reads everything.
    row_sample_rate: float = 1.0

    def __post_init__(self) -> None:
        if not self.partitions:
            raise DppError("a session must read at least one partition")
        if not self.projection:
            raise DppError("a session must project at least one feature")
        if self.batch_size <= 0:
            raise DppError("batch_size must be positive")
        if self.split_stripes <= 0:
            raise DppError("split_stripes must be positive")
        if self.coalesce_window < 0:
            raise DppError("coalesce_window cannot be negative")
        if not 0 < self.row_sample_rate <= 1:
            raise DppError("row_sample_rate must be in (0, 1]")
        missing = self.dag.required_raw_inputs() - set(self.projection)
        if missing:
            raise DppError(
                f"transform DAG reads features outside the projection: {sorted(missing)}"
            )

    def effective_output_ids(self) -> list[int]:
        """Columns loaded as tensors: explicit list or DAG outputs."""
        if self.output_ids:
            return list(self.output_ids)
        outputs = self.dag.output_ids()
        return outputs if outputs else sorted(self.projection)
