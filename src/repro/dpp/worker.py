"""DPP Workers: the stateless extract-transform-load data plane.

Each worker pulls splits from the master, reads and decodes raw bytes
from Tectonic (extract), applies the session's transform DAG per
mini-batch (transform), and buffers ready tensors for clients to pull
(partial load) — Section 3.2.1.

Two real code paths model the in-memory-format ablation (Table 12, FM):

* row path — decode stripes to :class:`Row` maps, then convert to the
  columnar batch (the format change the paper calls out as costly);
* flatmap path — decode DWRF streams directly into columnar batches,
  skipping row materialization.

Resource usage is charged through an analytical cost model on top of
the real byte/value counts the extract path produces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..common.errors import DppError, WorkerFailure
from ..common.resources import ResourceUsage
from ..telemetry.tracer import NULL_TRACER, Tracer
from ..dwrf.layout import FileFooter, FileLayout
from ..dwrf.reader import DwrfReader, IOTrace, ReadOptions
from ..dwrf.stream import ROW_LEVEL, StreamKind
from ..dwrf.stripe import decode_flattened_feature, decode_labels
from ..tectonic.filesystem import TectonicFilesystem
from ..transforms.batch import DenseColumn, FeatureBatch, SparseColumn
from ..transforms.cost import CostReport, execute_with_cost
from ..warehouse.schema import FeatureType, TableSchema
from .master import DppMaster, ReplicatedMaster
from .spec import SessionSpec
from .split import Split
from .tensors import TensorBatch


@dataclass(frozen=True)
class ExtractCostModel:
    """Cycle and memory-traffic charges for the extract phase.

    Constants are relative calibration values.  ``conversion_*`` apply
    only on the row path — the columnar-to-row-to-columnar format
    change that in-memory flatmaps eliminate (Section 7.5).
    ``overhead_factor`` multiplies all extract+transform cycles unless
    localized optimizations (LTO/AutoFDO, null-check removal) are on.
    """

    cycles_per_compressed_byte: float = 2.2  # decrypt + decompress
    cycles_per_value: float = 62.5  # stream decode into typed values
    mem_bytes_per_value: float = 14.0
    conversion_cycles_per_value: float = 22.2
    conversion_mem_bytes_per_value: float = 26.0
    overhead_factor: float = 1.28


@dataclass(frozen=True)
class WorkerConfig:
    """Data-plane options for one worker fleet.

    ``in_memory_flatmap`` selects the direct columnar decode path (FM);
    ``localized_optimizations`` removes the build/runtime overhead
    factor (LO); ``buffer_batches`` bounds the tensor buffer ("a small
    buffer of tensors in each Worker's memory").
    """

    in_memory_flatmap: bool = True
    localized_optimizations: bool = True
    buffer_batches: int = 8
    extract_cost: ExtractCostModel = field(default_factory=ExtractCostModel)


@dataclass
class WorkerStats:
    """Counters the autoscaling controller collects from each worker."""

    splits_completed: int = 0
    rows_processed: int = 0
    batches_produced: int = 0
    batches_served: int = 0
    storage_rx_bytes: int = 0
    tensor_tx_bytes: int = 0
    usage: ResourceUsage = field(default_factory=ResourceUsage)
    transform_report: CostReport = field(default_factory=CostReport)


class DppWorker:
    """One stateless preprocessing worker."""

    def __init__(
        self,
        worker_id: str,
        master: DppMaster | ReplicatedMaster,
        filesystem: TectonicFilesystem,
        schema: TableSchema,
        footers: dict[str, FileFooter],
        config: WorkerConfig | None = None,
    ) -> None:
        self.worker_id = worker_id
        self.master = master
        self.filesystem = filesystem
        self.schema = schema
        self.footers = footers
        self.config = config or WorkerConfig()
        # On startup each worker pulls the session's transform module
        # from the master (Section 3.2.1).
        self.spec: SessionSpec = master.primary.spec if isinstance(
            master, ReplicatedMaster
        ) else master.spec
        self.buffer: deque[TensorBatch] = deque()
        self.stats = WorkerStats()
        self.io_trace = IOTrace()
        self.alive = True
        self.draining = False
        self._crash_after_batches: int | None = None
        # Settable telemetry recorder (the owning session attaches it).
        self.tracer: Tracer = NULL_TRACER
        master.register_worker(worker_id)

    # -- control -----------------------------------------------------------

    def fail(self) -> None:
        """Kill the worker (fault injection); master requeues its work.

        The buffer dies with the process.  Batches still buffered for
        already-COMPLETED splits are reported as *stranded* so the
        master reopens those splits — without this, completed-but-
        unserved data would silently never reach a trainer.
        """
        self.alive = False
        self.draining = False
        stranded = sorted(
            {batch.split_id for batch in self.buffer if batch.split_id is not None}
        )
        self.buffer.clear()
        if self.tracer.enabled:
            self.tracer.instant(
                "worker.fail", actor=self.worker_id, stranded=len(stranded)
            )
        self.master.worker_failed(self.worker_id, stranded_split_ids=stranded)

    def drain(self) -> None:
        """Begin a graceful drain: stop pulling splits, keep serving.

        The worker retires (see :meth:`retire`) once clients have
        emptied its buffer, so a drain never strands delivered work —
        the fix for scale-down losing completed batches.
        """
        self.draining = True

    def retire(self) -> None:
        """Finish a graceful drain once the buffer is empty."""
        if self.buffer:
            raise DppError(
                f"worker {self.worker_id} cannot retire with "
                f"{len(self.buffer)} buffered batches"
            )
        self.alive = False
        self.draining = False
        self.master.worker_failed(self.worker_id)

    def inject_crash(self, after_batches: int = 1) -> None:
        """Arm a mid-split crash: the worker dies partway through its
        next split, after loading *after_batches* tensor batches —
        chaos-plane fault injection for the requeue path."""
        if after_batches < 0:
            raise DppError("after_batches cannot be negative")
        self._crash_after_batches = after_batches

    @property
    def crash_armed(self) -> bool:
        """Whether a mid-split crash is pending — fault planners must
        count armed workers as dead-workers-walking."""
        return self._crash_after_batches is not None

    # -- main loop ----------------------------------------------------------

    def process_one_split(self) -> bool:
        """Fetch and fully process one split; False when none remain.

        A thin recomposition of the public phase API below
        (:meth:`extract_batches` → :meth:`transform_batch` →
        :meth:`_load`): the synchronous pump and the async serving
        plane drive the *same* phase methods, so their data planes
        cannot drift apart.
        """
        if not self.alive:
            raise WorkerFailure(f"worker {self.worker_id} is dead")
        split = self.master.request_split(self.worker_id)
        if split is None:
            return False
        tracer = self.tracer
        traced = tracer.enabled
        if traced:
            tracer.begin(
                "split.process", actor=self.worker_id, split_id=split.split_id
            )
        try:
            sequence = 0
            for batch in self.extract_batches(split):
                self.transform_batch(batch)
                self._load(batch, split.split_id, sequence)
                sequence += 1
                if (
                    self._crash_after_batches is not None
                    and sequence >= self._crash_after_batches
                ):
                    # Die mid-split: the split is still ASSIGNED, so fail()
                    # makes the master requeue it; its partial batches are
                    # discarded with the buffer.
                    self._crash_after_batches = None
                    self.fail()
                    return True
            self.master.complete_split(self.worker_id, split.split_id)
            self.stats.splits_completed += 1
            return True
        finally:
            if traced:
                tracer.end(actor=self.worker_id)

    # -- the non-blocking phase API ------------------------------------------
    #
    # Each pipeline phase is its own call so an external scheduler (the
    # asyncio serving plane) can run extraction and transformation on
    # *different* workers with queues in between, while the synchronous
    # pump composes them back into process_one_split unchanged.

    def extract_batches(self, split: Split):
        """Extract one split into mini-batches (a generator).

        Pure extract phase: decodes stripes, charges extract cost, and
        yields session-sized :class:`FeatureBatch` slices.  The caller
        owns split-protocol bookkeeping (``complete_split``) and what
        happens to each batch next.
        """
        return self._extract_split(split)

    def transform_batch(self, batch: FeatureBatch) -> CostReport:
        """Run the session DAG over one batch and charge its cost."""
        report = execute_with_cost(self.spec.dag, batch)
        self._charge_transform(report)
        return report

    def tensorize(self, batch: FeatureBatch, split_id: int, sequence: int) -> TensorBatch:
        """Convert a transformed batch into a provenance-stamped tensor
        batch, without buffering it anywhere."""
        tensors = TensorBatch.from_feature_batch(
            batch, self.spec.effective_output_ids()
        )
        tensors.split_id = split_id
        tensors.sequence = sequence
        return tensors

    def deposit(self, tensors: TensorBatch) -> None:
        """Load phase: buffer a ready tensor batch for clients."""
        self.buffer.append(tensors)
        if self.tracer.enabled:
            self.tracer.instant(
                "batch.load",
                actor=self.worker_id,
                split_id=-1 if tensors.split_id is None else tensors.split_id,
                sequence=-1 if tensors.sequence is None else tensors.sequence,
            )
        self.stats.batches_produced += 1
        self.stats.usage.memory_resident_bytes = sum(
            t.nbytes() for t in self.buffer
        )

    @property
    def buffered_batches(self) -> int:
        """Tensors queued for clients — the autoscaler's key signal."""
        return len(self.buffer)

    @property
    def wants_work(self) -> bool:
        """Backpressure: a worker with a full buffer stops pulling splits.

        Draining workers never pull — they only serve out their buffer.
        """
        return (
            self.alive
            and not self.draining
            and len(self.buffer) < self.config.buffer_batches
        )

    def serve_batch(self) -> TensorBatch | None:
        """RPC handler: pop one tensor batch for a client."""
        if not self.alive:
            raise WorkerFailure(f"worker {self.worker_id} is dead")
        if not self.buffer:
            return None
        batch = self.buffer.popleft()
        self.stats.batches_served += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "batch.serve",
                actor=self.worker_id,
                split_id=-1 if batch.split_id is None else batch.split_id,
                sequence=-1 if batch.sequence is None else batch.sequence,
            )
        wire = batch.wire_bytes()
        self.stats.tensor_tx_bytes += wire
        self.stats.usage.nic_tx_bytes += wire
        self.stats.usage.mem_bytes += wire  # serialization touches every byte
        return batch

    # -- extract ------------------------------------------------------------

    def _extract_split(self, split: Split):
        footer = self.footers[split.file_name]
        is_map_layout = footer.options.layout is FileLayout.MAP
        read_options = ReadOptions(
            projection=None if is_map_layout else self.spec.projection,
            coalesce_window=self.spec.coalesce_window,
        )
        before_bytes = self.io_trace.bytes_read
        before_useful = self.io_trace.useful_bytes
        reader = DwrfReader(
            footer,
            self.filesystem.fetcher(split.file_name),
            read_options,
            trace=self.io_trace,
        )
        use_flatmap = self.config.in_memory_flatmap and not is_map_layout
        for stripe_index in range(split.stripe_start, split.stripe_end):
            if use_flatmap:
                batch, n_values = self._read_stripe_columnar(reader, stripe_index)
                conversion_values = 0
            else:
                # Row path: with the MAP layout the whole stripe is
                # decoded into rows before the projection can apply —
                # the extract inefficiency feature flattening removes.
                rows = reader.read_stripe(stripe_index, self.schema)
                n_values = self._count_row_values(rows)
                batch = FeatureBatch.from_rows(rows, sorted(self.spec.projection))
                conversion_values = n_values
            self._ensure_projection_columns(batch)
            compressed = self.io_trace.bytes_read - before_bytes
            # Decode CPU is charged on stream bytes actually decoded;
            # coalesced over-read bytes cross the NIC but are skipped.
            decoded = self.io_trace.useful_bytes - before_useful
            before_bytes = self.io_trace.bytes_read
            before_useful = self.io_trace.useful_bytes
            self._charge_extract(compressed, decoded, n_values, conversion_values)
            self.stats.rows_processed += batch.n_rows
            self.stats.storage_rx_bytes += compressed
            yield from self._rebatch(batch)

    def _read_stripe_columnar(
        self, reader: DwrfReader, stripe_index: int
    ) -> tuple[FeatureBatch, int]:
        """Direct DWRF-streams → columnar-batch decode (flatmap path)."""
        stripe = reader.footer.stripes[stripe_index]
        payloads = reader._fetch_streams(stripe)
        options = reader.footer.options
        labels = decode_labels(payloads[(ROW_LEVEL, StreamKind.LABEL)], options)
        batch = FeatureBatch(labels=labels)
        n_values = len(labels)
        for fid in sorted(self.spec.projection):
            if not stripe.has_stream(fid, StreamKind.PRESENCE):
                continue
            spec = self.schema.get(fid)
            if spec.ftype is FeatureType.DENSE:
                value_payload = payloads[(fid, StreamKind.DENSE_VALUES)]
                lengths_payload = None
            else:
                value_payload = payloads[(fid, StreamKind.SPARSE_VALUES)]
                lengths_payload = payloads[(fid, StreamKind.SPARSE_LENGTHS)]
            scores_payload = payloads.get((fid, StreamKind.SCORE_VALUES))
            decoded = decode_flattened_feature(
                spec.ftype,
                stripe.row_count,
                options,
                payloads[(fid, StreamKind.PRESENCE)],
                value_payload,
                lengths_payload,
                scores_payload,
            )
            if spec.ftype is FeatureType.DENSE:
                full = np.zeros(stripe.row_count, dtype=np.float32)
                full[decoded.presence] = decoded.dense_values
                batch.add_column(fid, DenseColumn(full, decoded.presence))
                n_values += len(decoded.dense_values)
            else:
                # Decoded flat arrays become the column's backing
                # storage directly; absent rows get empty spans.
                column = SparseColumn(
                    decoded.row_offsets(stripe.row_count),
                    decoded.sparse_values,
                    decoded.scores,
                )
                batch.add_column(fid, column)
                n_values += len(column.values)
        return batch, n_values

    def _ensure_projection_columns(self, batch: FeatureBatch) -> None:
        """Backfill empty columns for projected features absent from a stripe.

        A feature with zero coverage in a stripe writes no streams, but
        the transform DAG still expects its column; production decoders
        materialize an all-null vector in that case.
        """
        n = batch.n_rows
        for fid in self.spec.projection:
            if fid in batch.columns:
                continue
            spec = self.schema.get(fid)
            if spec.ftype is FeatureType.DENSE:
                batch.add_column(
                    fid,
                    DenseColumn(
                        np.zeros(n, dtype=np.float32), np.zeros(n, dtype=bool)
                    ),
                )
            else:
                weights = (
                    np.empty(0, dtype=np.float32)
                    if spec.ftype is FeatureType.SCORED_SPARSE
                    else None
                )
                batch.add_column(
                    fid,
                    SparseColumn(
                        np.zeros(n + 1, dtype=np.int64),
                        np.empty(0, dtype=np.int64),
                        weights,
                    ),
                )

    @staticmethod
    def _count_values(batch: FeatureBatch) -> int:
        total = batch.n_rows  # labels
        for column in batch.columns.values():
            total += len(column.values)
        return total

    @staticmethod
    def _count_row_values(rows) -> int:
        total = len(rows)  # labels
        for row in rows:
            total += len(row.dense)
            total += sum(len(ids) for ids in row.sparse.values())
            total += sum(len(ws) for ws in row.scores.values())
        return total

    def _rebatch(self, batch: FeatureBatch):
        """Cut a stripe-sized batch into session-sized mini-batches.

        Stripes rarely equal the training batch size; production
        workers regroup rows.  For simplicity we emit one tensor batch
        per ceil(rows / batch_size) slice without crossing stripes.
        """
        size = self.spec.batch_size
        if batch.n_rows <= size:
            yield batch
            return
        for start in range(0, batch.n_rows, size):
            stop = min(start + size, batch.n_rows)
            piece = FeatureBatch(labels=batch.labels[start:stop])
            for fid, column in batch.columns.items():
                if isinstance(column, DenseColumn):
                    piece.add_column(
                        fid,
                        DenseColumn(
                            column.values[start:stop], column.presence[start:stop]
                        ),
                    )
                else:
                    offsets = column.offsets[start : stop + 1]
                    base = offsets[0]
                    values = column.values[base : offsets[-1]]
                    weights = (
                        None
                        if column.weights is None
                        else column.weights[base : offsets[-1]]
                    )
                    piece.add_column(
                        fid, SparseColumn(offsets - base, values, weights)
                    )
            yield piece

    # -- load ---------------------------------------------------------------

    def _load(self, batch: FeatureBatch, split_id: int, sequence: int) -> None:
        self.deposit(self.tensorize(batch, split_id, sequence))

    # -- cost charging ----------------------------------------------------------

    def _overhead(self) -> float:
        if self.config.localized_optimizations:
            return 1.0
        return self.config.extract_cost.overhead_factor

    def _charge_extract(
        self,
        compressed_bytes: int,
        decoded_bytes: int,
        n_values: int,
        conversion_values: int,
    ) -> None:
        model = self.config.extract_cost
        cycles = (
            decoded_bytes * model.cycles_per_compressed_byte
            + n_values * model.cycles_per_value
            + conversion_values * model.conversion_cycles_per_value
        ) * self._overhead()
        mem = (
            n_values * model.mem_bytes_per_value
            + conversion_values * model.conversion_mem_bytes_per_value
        )
        usage = self.stats.usage
        usage.cpu_cycles += cycles
        usage.mem_bytes += mem
        usage.nic_rx_bytes += compressed_bytes

    def _charge_transform(self, report: CostReport) -> None:
        self.stats.transform_report.merge(report)
        usage = self.stats.usage
        usage.cpu_cycles += report.cycles * self._overhead()
        usage.mem_bytes += report.mem_bytes
