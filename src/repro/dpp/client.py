"""DPP Clients: the trainer-side half of the data plane.

A client runs on each training node and exposes the hook the PyTorch
runtime calls to obtain preprocessed tensors (Section 3.2.1).  To keep
connection counts bounded, "each Client uses partitioned round robin
routing, capping the number of connections that Clients and Workers
need to maintain."
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from ..common.errors import DppError, WorkerFailure
from .tensors import TensorBatch
from .worker import DppWorker


@dataclass
class ClientStats:
    """Per-client counters for data-loading characterization."""

    batches_received: int = 0
    bytes_received: int = 0
    empty_polls: int = 0


class DppClient:
    """Pulls tensor batches from a bounded partition of the worker fleet."""

    def __init__(
        self, client_id: str, workers: list[DppWorker], max_connections: int = 4
    ) -> None:
        if max_connections <= 0:
            raise DppError("max_connections must be positive")
        self.client_id = client_id
        self._all_workers = workers
        self.max_connections = max_connections
        self._cursor = 0
        self.stats = ClientStats()
        self._partition = self._build_partition()

    def _build_partition(self) -> list[DppWorker]:
        """Deterministically pick this client's slice of the fleet.

        Clients hash to an offset and take every k-th worker so that
        fleet load stays balanced while per-client connections stay
        capped.
        """
        alive = [worker for worker in self._all_workers if worker.alive]
        if not alive:
            raise DppError("no live workers to connect to")
        if len(alive) <= self.max_connections:
            return list(alive)
        # A process-stable hash: Python's str hash is randomized per
        # interpreter (PYTHONHASHSEED), which would make partition
        # layout -- and thus which workers get drained -- vary from
        # run to run.
        offset = zlib.crc32(self.client_id.encode()) % len(alive)
        stride = max(1, len(alive) // self.max_connections)
        return [alive[(offset + i * stride) % len(alive)] for i in range(self.max_connections)]

    @property
    def connections(self) -> int:
        """Number of workers this client is connected to."""
        return len(self._partition)

    def refresh_partition(self) -> None:
        """Re-pick workers, e.g. after the fleet scales or one dies."""
        self._partition = self._build_partition()

    def get_batch(self) -> TensorBatch | None:
        """The PyTorch-runtime hook: fetch one preprocessed batch.

        Round-robins over the client's partition; a dead worker
        triggers a partition refresh and the poll continues.  Returns
        None when every connected worker's buffer is empty.
        """
        for _ in range(len(self._partition)):
            worker = self._partition[self._cursor % len(self._partition)]
            self._cursor += 1
            try:
                batch = worker.serve_batch()
            except WorkerFailure:
                self.refresh_partition()
                continue
            if batch is not None:
                self.stats.batches_received += 1
                self.stats.bytes_received += batch.wire_bytes()
                return batch
        self.stats.empty_polls += 1
        return None
