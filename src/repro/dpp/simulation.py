"""Closed-loop DPP simulation: the auto-scaler against live demand.

The executable session (:mod:`repro.dpp.service`) is untimed — a fair
round-robin pump. This module adds the *temporal* half of Section
3.2.1: workers produce tensor batches at their model's achievable QPS,
trainers consume at GPU demand, a shared buffer absorbs transients, and
the controller evaluates periodically on virtual time.  It answers the
questions the paper's controller was built for: how fast do stalls
disappear after a scale-up, and how much capacity does right-sizing
save versus worst-case provisioning.

Worker launches take time (container scheduling + transform-module
pull), so scale-ups do not help instantly — the reason workers keep "a
small buffer of tensors" in memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..common.errors import DppError
from ..common.serialization import ReportBase, require_keys, revive_floats
from ..common.simclock import SimClock
from ..telemetry.tracer import NULL_TRACER, Tracer
from .autoscaler import AutoscalerConfig, AutoscalingController


@dataclass(frozen=True)
class SimulationConfig:
    """Rates and control-loop settings for a timed session."""

    worker_batches_per_s: float  # one worker's steady output
    trainer_batches_per_s: float  # the GPU fleet's consumption demand
    initial_workers: int = 1
    worker_spinup_s: float = 30.0
    controller_period_s: float = 10.0
    tick_s: float = 1.0
    buffer_capacity_batches: int = 10_000
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)

    def __post_init__(self) -> None:
        if self.worker_batches_per_s <= 0 or self.trainer_batches_per_s <= 0:
            raise DppError("rates must be positive")
        if self.initial_workers < 1:
            raise DppError("need at least one initial worker")
        if self.tick_s <= 0 or self.controller_period_s <= 0:
            raise DppError("time steps must be positive")

    @property
    def workers_required(self) -> float:
        """Fleet size that exactly matches trainer demand."""
        return self.trainer_batches_per_s / self.worker_batches_per_s


@dataclass
class SimTickSample:
    """One tick's observation of the closed loop."""

    time_s: float
    live_workers: int
    pending_workers: int
    buffered_batches: float
    produced: float
    consumed: float
    stalled: bool

    _FLOAT_FIELDS = ("time_s", "buffered_batches", "produced", "consumed")

    def to_row(self) -> dict:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    @classmethod
    def from_row(cls, row: dict) -> "SimTickSample":
        require_keys(
            row,
            required=cls._FLOAT_FIELDS
            + ("live_workers", "pending_workers", "stalled"),
            context="dpp tick sample",
        )
        revived = revive_floats(row, cls._FLOAT_FIELDS)
        return cls(
            time_s=revived["time_s"],
            live_workers=int(row["live_workers"]),
            pending_workers=int(row["pending_workers"]),
            buffered_batches=revived["buffered_batches"],
            produced=revived["produced"],
            consumed=revived["consumed"],
            stalled=bool(row["stalled"]),
        )


@dataclass
class SimulationResult(ReportBase):
    """Full trace plus summary statistics."""

    report_kind = "dpp"

    samples: list[SimTickSample]
    scaling_decisions: list[str]

    def payload(self) -> dict:
        return {
            "samples": [sample.to_row() for sample in self.samples],
            "scaling_decisions": list(self.scaling_decisions),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SimulationResult":
        require_keys(
            payload,
            required=("samples", "scaling_decisions"),
            context="dpp simulation report",
        )
        return cls(
            samples=[SimTickSample.from_row(row) for row in payload["samples"]],
            scaling_decisions=list(payload["scaling_decisions"]),
        )

    def metrics(self) -> dict[str, float]:
        return {
            "dpp.ticks": float(len(self.samples)),
            "dpp.stall_fraction": (
                self.stall_fraction if self.samples else math.nan
            ),
            "dpp.peak_workers": (
                float(self.peak_workers) if self.samples else math.nan
            ),
            "dpp.final_workers": (
                float(self.final_workers) if self.samples else math.nan
            ),
            "dpp.scaling_decisions": float(len(self.scaling_decisions)),
        }

    @property
    def stall_fraction(self) -> float:
        """Fraction of ticks in which trainers were starved."""
        if not self.samples:
            raise DppError("empty simulation")
        return sum(1 for s in self.samples if s.stalled) / len(self.samples)

    def stall_fraction_after(self, time_s: float) -> float:
        """Stall fraction over ticks at or after *time_s*."""
        tail = [s for s in self.samples if s.time_s >= time_s]
        if not tail:
            raise DppError("no samples after requested time")
        return sum(1 for s in tail if s.stalled) / len(tail)

    @property
    def peak_workers(self) -> int:
        """Largest live fleet seen."""
        return max(s.live_workers for s in self.samples)

    @property
    def final_workers(self) -> int:
        """Fleet size at the end of the run."""
        return self.samples[-1].live_workers

    def time_to_first_stall_free_window(self, window_s: float) -> float | None:
        """Earliest time after which a full window passes with no stall."""
        window: list[SimTickSample] = []
        for sample in self.samples:
            window.append(sample)
            window = [s for s in window if s.time_s > sample.time_s - window_s]
            if (
                window
                and window[0].time_s <= sample.time_s - window_s + 1e-9 + 1
                and not any(s.stalled for s in window)
            ):
                return sample.time_s
        return None


class TimedDppSimulation:
    """Fluid-flow simulation of one session's buffer dynamics.

    By default each simulation owns a private :class:`SimClock`; a
    fleet-level harness can instead pass a *shared* clock so many
    sessions advance in lockstep on one event heap (see
    :mod:`repro.fleet`), scheduling via :meth:`schedule` and driving
    the clock itself.
    """

    def __init__(
        self,
        config: SimulationConfig,
        clock: SimClock | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config
        self.clock = clock or SimClock()
        self.tracer = tracer or NULL_TRACER
        if self.tracer.enabled:
            self.tracer.bind_clock(lambda: self.clock.now)
        self.controller = AutoscalingController(config.autoscaler)
        self._live_workers = config.initial_workers
        self._pending: list[float] = []  # spin-up completion times
        self._buffer = 0.0
        self._samples: list[SimTickSample] = []
        self._decisions: list[str] = []

    # -- dynamics ------------------------------------------------------------

    def _tick(self) -> None:
        config = self.config
        now = self.clock.now
        # Complete any worker launches that finished spinning up (skip
        # the rebuild entirely on the common no-launches-in-flight tick).
        if self._pending:
            ready = [t for t in self._pending if t <= now]
            if ready:
                self._pending = [t for t in self._pending if t > now]
                self._live_workers += len(ready)

        produced = self._live_workers * config.worker_batches_per_s * config.tick_s
        demand = config.trainer_batches_per_s * config.tick_s
        available = self._buffer + produced
        consumed = min(demand, available)
        stalled = consumed < demand - 1e-9
        self._buffer = min(
            available - consumed, float(config.buffer_capacity_batches)
        )
        self._samples.append(
            SimTickSample(
                time_s=now,
                live_workers=self._live_workers,
                pending_workers=len(self._pending),
                buffered_batches=self._buffer,
                produced=produced,
                consumed=consumed,
                stalled=stalled,
            )
        )
        tracer = self.tracer
        if tracer.enabled:
            tracer.counter("dpp.buffered_batches", self._buffer, actor="session")
            tracer.counter("dpp.live_workers", self._live_workers, actor="session")
            if stalled:
                tracer.instant(
                    "trainer.stall", actor="session", shortfall=demand - consumed
                )
            tracer.metrics.counter("dpp.ticks").inc()

    def _controller_step(self) -> None:
        config = self.config
        per_worker_buffer = (
            self._buffer / self._live_workers if self._live_workers else 0.0
        )
        utilization = min(
            1.0,
            config.trainer_batches_per_s
            / max(self._live_workers * config.worker_batches_per_s, 1e-9),
        )
        # Every fluid-model worker reports identically, so the O(1)
        # aggregate evaluation replaces materializing one telemetry
        # record per worker per control period.
        decision = self.controller.evaluate_uniform(
            self._live_workers, int(per_worker_buffer), utilization
        )
        if decision.delta > 0:
            # The controller caps on live workers; in-flight launches
            # also count against the fleet ceiling.
            headroom = config.autoscaler.max_workers - (
                self._live_workers + len(self._pending)
            )
            launched = min(decision.delta, max(0, headroom))
            for _ in range(launched):
                self._pending.append(self.clock.now + config.worker_spinup_s)
            self._decisions.append(
                f"t={self.clock.now:.0f}s launch {decision.delta}: {decision.reason}"
            )
            if self.tracer.enabled:
                self.tracer.instant(
                    "session.scale", actor="session", delta=launched
                )
        elif decision.delta < 0:
            drain = min(-decision.delta, self._live_workers - 1)
            self._live_workers -= drain
            if drain:
                self._decisions.append(
                    f"t={self.clock.now:.0f}s drain {drain}: {decision.reason}"
                )
                if self.tracer.enabled:
                    self.tracer.instant(
                        "session.scale", actor="session", delta=-drain
                    )

    # -- fault injection -------------------------------------------------------

    def inject_worker_loss(self, count: int) -> None:
        """Kill *count* live workers instantly (chaos-plane churn).

        The controller sees the shrunken fleet at its next evaluation
        and relaunches — the closed loop's recovery-time question.  At
        least one worker always survives so the loop stays defined.
        """
        if count < 0:
            raise DppError("cannot lose a negative number of workers")
        lost = self._live_workers - max(1, self._live_workers - count)
        self._live_workers -= lost
        if self.tracer.enabled:
            self.tracer.instant("worker.loss", actor="session", lost=lost)

    # -- driver ----------------------------------------------------------------

    def schedule(self, duration_s: float) -> None:
        """Register this session's processes on the clock without running.

        Used when the clock is shared: each session schedules its tick
        and controller processes, then one external driver advances the
        common clock.  The processes stop ``duration_s`` after the
        current virtual time.
        """
        config = self.config
        until = self.clock.now + duration_s
        self.clock.every(config.tick_s, self._tick, until=until)
        self.clock.every(
            config.controller_period_s, self._controller_step, until=until
        )

    def result(self) -> SimulationResult:
        """The trace accumulated so far (for externally driven clocks)."""
        return SimulationResult(self._samples, self._decisions)

    def run(self, duration_s: float) -> SimulationResult:
        """Run the closed loop for *duration_s* of virtual time."""
        deadline = self.clock.now + duration_s
        self.schedule(duration_s)
        self.clock.run_until(deadline)
        return self.result()
