"""The DPP Master: work distribution, fault tolerance, checkpointing.

The control plane of DPP (Section 3.2.1).  The master serves splits to
workers on request, tracks progress, periodically checkpoints reader
state, detects failed workers and requeues their in-flight splits
(workers are stateless, so no worker-side restore is needed), and is
itself replicated to avoid a single point of failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import DppError
from ..common.hashing import stable_fraction
from ..telemetry.tracer import NULL_TRACER, Tracer
from ..dwrf.layout import FileFooter
from .spec import SessionSpec
from .split import Split, SplitState, plan_splits


@dataclass(frozen=True)
class MasterCheckpoint:
    """Durable snapshot of reader state: which splits completed."""

    session_table: str
    completed_split_ids: frozenset[int]


@dataclass
class _SplitRecord:
    split: Split
    state: SplitState = SplitState.PENDING
    assigned_to: str | None = None


def _sample_splits(splits: list[Split], rate: float) -> list[Split]:
    """Deterministic split-level row sampling (pushdown).

    Splits are kept by a *process-stable* hash of their identity
    (:func:`~repro.common.hashing.stable_fraction` — never the salted
    builtin ``hash()``), so the sample is identical across master
    restarts, replicas, and PYTHONHASHSEED values — a requirement for
    exactly-once epoch semantics under failover.  At least one split
    always survives.
    """
    kept = [
        split
        for split in splits
        if stable_fraction(split.file_name, split.stripe_start) < rate
    ]
    return kept or splits[:1]


class DppMaster:
    """Serves splits, tracks progress, and survives worker failures."""

    def __init__(self, spec: SessionSpec, files: dict[str, FileFooter]) -> None:
        expected = set(spec.partitions)
        missing = expected - set(files)
        if missing:
            raise DppError(f"files missing for partitions: {sorted(missing)}")
        self.spec = spec
        splits = plan_splits(
            {name: files[name] for name in spec.partitions}, spec.split_stripes
        )
        if spec.row_sample_rate < 1.0:
            splits = _sample_splits(splits, spec.row_sample_rate)
        self._records: dict[int, _SplitRecord] = {
            split.split_id: _SplitRecord(split) for split in splits
        }
        self._registered_workers: set[str] = set()
        # Settable telemetry recorder (kept out of the constructor so
        # every existing call site and pickle path stays unchanged).
        self.tracer: Tracer = NULL_TRACER

    # -- worker membership ---------------------------------------------------

    def register_worker(self, worker_id: str) -> None:
        """Admit a worker into the session."""
        self._registered_workers.add(worker_id)

    def worker_failed(
        self, worker_id: str, stranded_split_ids: tuple[int, ...] | list[int] = ()
    ) -> list[int]:
        """Handle a worker death: requeue its in-flight splits.

        *stranded_split_ids* names splits whose tensor batches were
        still sitting in the dead worker's buffer — produced but never
        served to a client.  A split in that list that already reached
        COMPLETED is reopened (back to PENDING) so its data is
        re-extracted rather than silently lost; delivery degrades to
        at-least-once for any of its batches a client did receive.

        Returns the requeued split IDs.  Because workers are stateless,
        recovery is exactly this requeue — no checkpoint restore.
        """
        self._registered_workers.discard(worker_id)
        requeued = []
        for record in self._records.values():
            if record.state is SplitState.ASSIGNED and record.assigned_to == worker_id:
                record.state = SplitState.PENDING
                record.assigned_to = None
                requeued.append(record.split.split_id)
        for split_id in stranded_split_ids:
            record = self._record(split_id)
            if record.state is SplitState.COMPLETED:
                record.state = SplitState.PENDING
                record.assigned_to = None
                requeued.append(split_id)
        if self.tracer.enabled:
            for split_id in requeued:
                self.tracer.instant(
                    "split.requeue",
                    actor="master",
                    split_id=split_id,
                    worker=worker_id,
                )
            self.tracer.log(
                "worker failed",
                worker=worker_id,
                requeued=len(requeued),
            )
        return requeued

    @property
    def workers(self) -> set[str]:
        """Currently registered workers."""
        return set(self._registered_workers)

    # -- split protocol --------------------------------------------------------

    def request_split(self, worker_id: str) -> Split | None:
        """Hand the next pending split to *worker_id*; None when drained."""
        if worker_id not in self._registered_workers:
            raise DppError(f"unregistered worker {worker_id!r} requested a split")
        for record in self._records.values():
            if record.state is SplitState.PENDING:
                record.state = SplitState.ASSIGNED
                record.assigned_to = worker_id
                if self.tracer.enabled:
                    self.tracer.instant(
                        "split.assign",
                        actor="master",
                        split_id=record.split.split_id,
                        worker=worker_id,
                    )
                return record.split
        return None

    def complete_split(self, worker_id: str, split_id: int) -> None:
        """Mark a split finished by the worker that owned it."""
        record = self._record(split_id)
        if record.state is not SplitState.ASSIGNED or record.assigned_to != worker_id:
            raise DppError(
                f"split {split_id} not assigned to worker {worker_id!r}"
            )
        record.state = SplitState.COMPLETED
        record.assigned_to = None
        if self.tracer.enabled:
            self.tracer.instant(
                "split.complete",
                actor="master",
                split_id=split_id,
                worker=worker_id,
            )

    def begin_epoch(self) -> int:
        """Reopen every COMPLETED split for another pass (PENDING again).

        The serving plane loops epochs over a finite table to feed an
        unbounded fetch stream; splits still ASSIGNED keep their owner
        (the new epoch starts draining behind them).  Returns the
        number of splits reopened.
        """
        reopened = 0
        for record in self._records.values():
            if record.state is SplitState.COMPLETED:
                record.state = SplitState.PENDING
                record.assigned_to = None
                reopened += 1
        if self.tracer.enabled and reopened:
            self.tracer.instant("epoch.begin", actor="master", reopened=reopened)
        return reopened

    def _record(self, split_id: int) -> _SplitRecord:
        try:
            return self._records[split_id]
        except KeyError:
            raise DppError(f"unknown split {split_id}") from None

    # -- progress ---------------------------------------------------------------

    @property
    def splits(self) -> list[Split]:
        """The session's (possibly sampled) splits, in dataset order."""
        return [record.split for record in self._records.values()]

    @property
    def split_ids(self) -> frozenset[int]:
        """Identity of the sampled split set — the recovery invariant:
        any master built from the same spec and files must produce
        exactly this set, or checkpoints would dangle."""
        return frozenset(self._records)

    @property
    def total_splits(self) -> int:
        """Number of splits in the session."""
        return len(self._records)

    @property
    def completed_splits(self) -> int:
        """Number of completed splits."""
        return sum(
            1 for r in self._records.values() if r.state is SplitState.COMPLETED
        )

    @property
    def pending_splits(self) -> int:
        """Number of splits not yet assigned."""
        return sum(1 for r in self._records.values() if r.state is SplitState.PENDING)

    @property
    def assigned_splits(self) -> int:
        """Number of splits currently in flight."""
        return sum(1 for r in self._records.values() if r.state is SplitState.ASSIGNED)

    @property
    def done(self) -> bool:
        """Whether every split has completed."""
        return self.completed_splits == self.total_splits

    @property
    def progress(self) -> float:
        """Completed fraction in [0, 1]."""
        return self.completed_splits / self.total_splits

    # -- checkpointing ------------------------------------------------------------

    def checkpoint(self) -> MasterCheckpoint:
        """Snapshot completed-split state for failure recovery."""
        completed = frozenset(
            split_id
            for split_id, record in self._records.items()
            if record.state is SplitState.COMPLETED
        )
        return MasterCheckpoint(self.spec.table_name, completed)

    def restore(self, checkpoint: MasterCheckpoint) -> None:
        """Restore from a checkpoint: completed stay done, rest requeue.

        Splits that completed after the checkpoint was taken are
        *re-queued* (at-least-once delivery) — the data plane tolerates
        replays because tensors are consumed idempotently per split.
        """
        if checkpoint.session_table != self.spec.table_name:
            raise DppError("checkpoint belongs to a different session")
        unknown = checkpoint.completed_split_ids - set(self._records)
        if unknown:
            raise DppError(f"checkpoint references unknown splits: {sorted(unknown)}")
        for split_id, record in self._records.items():
            if split_id in checkpoint.completed_split_ids:
                record.state = SplitState.COMPLETED
            else:
                record.state = SplitState.PENDING
            record.assigned_to = None


class ReplicatedMaster:
    """Primary/standby master pair (the master "is replicated to avoid
    being a single point of failure", Section 3.2.1).

    The primary serves all traffic and ships every state change to the
    standby synchronously (we model replication as shared-nothing
    checkpoint shipping on each mutation).  ``fail_over`` promotes the
    standby, losing nothing.
    """

    def __init__(self, spec: SessionSpec, files: dict[str, FileFooter]) -> None:
        self._spec = spec
        self._files = dict(files)
        self.primary = DppMaster(spec, files)
        self._standby_checkpoint = self.primary.checkpoint()
        self._standby_workers: set[str] = set()
        self.failovers = 0
        self.tracer: Tracer = NULL_TRACER

    def attach_tracer(self, tracer: Tracer) -> None:
        """Report master activity through *tracer* (carried across
        fail-overs onto each promoted replica)."""
        self.tracer = tracer
        self.primary.tracer = tracer

    def register_worker(self, worker_id: str) -> None:
        """Register on the primary and mirror membership to the standby."""
        self.primary.register_worker(worker_id)
        self._standby_workers.add(worker_id)

    def request_split(self, worker_id: str) -> Split | None:
        """Delegate to the primary."""
        return self.primary.request_split(worker_id)

    def complete_split(self, worker_id: str, split_id: int) -> None:
        """Delegate to the primary, then replicate state."""
        self.primary.complete_split(worker_id, split_id)
        self._standby_checkpoint = self.primary.checkpoint()

    def worker_failed(
        self, worker_id: str, stranded_split_ids: tuple[int, ...] | list[int] = ()
    ) -> list[int]:
        """Delegate to the primary, mirror membership, and replicate.

        Reopening a stranded COMPLETED split mutates durable state, so
        the standby checkpoint must be reshipped — otherwise a failover
        would resurrect the split as completed while its batches died
        with the worker.
        """
        self._standby_workers.discard(worker_id)
        requeued = self.primary.worker_failed(worker_id, stranded_split_ids)
        self._standby_checkpoint = self.primary.checkpoint()
        return requeued

    def begin_epoch(self) -> int:
        """Delegate to the primary, then replicate the reopened state."""
        reopened = self.primary.begin_epoch()
        self._standby_checkpoint = self.primary.checkpoint()
        return reopened

    def checkpoint(self) -> MasterCheckpoint:
        """Snapshot the primary's durable state."""
        return self.primary.checkpoint()

    def restore(self, checkpoint: MasterCheckpoint) -> None:
        """Restore the primary from *checkpoint* and re-ship the standby.

        Used when simulating a full master-process restart: the caller
        rebuilds the pair from the session spec, then replays the last
        durable checkpoint into it.
        """
        self.primary.restore(checkpoint)
        self._standby_checkpoint = self.primary.checkpoint()

    def fail_over(self) -> None:
        """Kill the primary and promote a fresh replica from shipped state.

        In-flight (assigned) splits are requeued — workers simply fetch
        them again; completed state is preserved exactly.
        """
        replacement = DppMaster(self._spec, self._files)
        replacement.restore(self._standby_checkpoint)
        for worker_id in self._standby_workers:
            replacement.register_worker(worker_id)
        replacement.tracer = self.tracer
        self.primary = replacement
        self.failovers += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "master.failover", actor="master", failovers=self.failovers
            )

    @property
    def done(self) -> bool:
        """Whether the session has completed every split."""
        return self.primary.done
