"""Materialized tensor batches: DPP's output format.

Workers batch transformed samples into tensors "to be loaded onto GPU
trainers" (Section 3.2.1).  Dense features stack into a 2-D float
matrix; sparse features keep the offsets + values layout that embedding
lookups consume (the same flat format as
:class:`~repro.transforms.batch.SparseColumn`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import DppError
from ..transforms.batch import DenseColumn, FeatureBatch, SparseColumn

# Thrift envelope + field headers: bytes of wire overhead per tensor
# batch and per tensor, part of the "datacenter tax" (Section 6.2).
WIRE_OVERHEAD_PER_BATCH = 256
WIRE_OVERHEAD_PER_TENSOR = 16


@dataclass
class TensorBatch:
    """One ready-to-load batch of training tensors.

    ``split_id``/``sequence`` are delivery provenance: which split this
    batch came from and its deterministic index within that split.  The
    master uses them to reopen splits whose batches died unserved in a
    worker's buffer, and the chaos plane to check exactly-once
    delivery.  ``None`` means the batch was built outside a session.
    """

    labels: np.ndarray
    dense: dict[int, np.ndarray] = field(default_factory=dict)
    sparse_offsets: dict[int, np.ndarray] = field(default_factory=dict)
    sparse_values: dict[int, np.ndarray] = field(default_factory=dict)
    sparse_weights: dict[int, np.ndarray] = field(default_factory=dict)
    split_id: int | None = None
    sequence: int = 0

    @property
    def n_rows(self) -> int:
        """Number of samples in the batch."""
        return len(self.labels)

    def nbytes(self) -> int:
        """Resident bytes of all tensors."""
        total = self.labels.nbytes
        total += sum(a.nbytes for a in self.dense.values())
        total += sum(a.nbytes for a in self.sparse_offsets.values())
        total += sum(a.nbytes for a in self.sparse_values.values())
        total += sum(a.nbytes for a in self.sparse_weights.values())
        return total

    def wire_bytes(self) -> int:
        """Serialized size on the Worker→Client RPC path."""
        n_tensors = (
            1
            + len(self.dense)
            + 2 * len(self.sparse_offsets)
            + len(self.sparse_weights)
        )
        return self.nbytes() + WIRE_OVERHEAD_PER_BATCH + n_tensors * WIRE_OVERHEAD_PER_TENSOR

    @classmethod
    def from_feature_batch(
        cls, batch: FeatureBatch, output_ids: list[int] | None = None
    ) -> "TensorBatch":
        """Materialize tensors from a transformed feature batch.

        *output_ids* selects which columns become tensors (the model's
        input features); by default all columns do.
        """
        ids = output_ids if output_ids is not None else sorted(batch.columns)
        tensors = cls(labels=batch.labels.copy())
        for fid in ids:
            column = batch.column(fid)
            if isinstance(column, DenseColumn):
                values = np.where(column.presence, column.values, 0.0)
                tensors.dense[fid] = values.astype(np.float32)
            elif isinstance(column, SparseColumn):
                tensors.sparse_offsets[fid] = column.offsets.copy()
                tensors.sparse_values[fid] = column.values.copy()
                if column.weights is not None:
                    tensors.sparse_weights[fid] = column.weights.copy()
            else:  # pragma: no cover - defensive
                raise DppError(f"unsupported column type for feature {fid}")
        return tensors
