"""The model-serving framework's logging side.

Fresh training samples begin life at serving time: a service evaluates
a (user, item) pair, logs the generated features, and later logs the
observed outcome event (Section 3.1).  This module generates that raw
traffic synthetically, with engagement probability linked to features
so downstream models have real signal.
"""

from __future__ import annotations

import numpy as np

from ..common.hashing import stable_hash
from ..warehouse.generator import SampleGenerator
from ..warehouse.schema import TableSchema
from .events import EventLog, FeatureLog
from .scribe import ScribeDaemon

FEATURES_CATEGORY = "features"
EVENTS_CATEGORY = "events"


def request_id_base(host: str) -> int:
    """The first request ID a serving host hands out.

    Request IDs must be globally unique across serving hosts or the
    downstream join silently mismatches; each host gets a disjoint
    2**32-wide range derived from its name.  The hash must be
    process-stable: a salted builtin ``hash()`` would give every rerun
    a different ID range and break serving-trace reproducibility.
    The serving plane (``repro.serving``) reuses this same base so its
    simulated trainer fetches share the ID space of logged traffic.
    """
    return (stable_hash(host) & 0xFFFF) << 32


# The ServingSimulator constructor parameter shadows the function name.
_host_request_id_base = request_id_base


class ServingSimulator:
    """Synthesizes serving-time feature and event logs.

    Reuses the warehouse sample generator for feature statistics; the
    outcome event is Bernoulli with a rate modulated by the first dense
    feature, giving labels genuine feature dependence.
    """

    def __init__(
        self,
        schema: TableSchema,
        generator: SampleGenerator,
        daemon: ScribeDaemon,
        engagement_rate: float = 0.3,
        event_loss_rate: float = 0.02,
        seed: int = 0,
        request_id_base: int | None = None,
    ) -> None:
        self.schema = schema
        self._generator = generator
        self._daemon = daemon
        self._engagement_rate = engagement_rate
        self._event_loss_rate = event_loss_rate
        self._rng = np.random.default_rng(seed)
        # Unless given explicitly, derive a disjoint per-host ID range
        # (see request_id_base above).
        if request_id_base is None:
            request_id_base = _host_request_id_base(daemon.host)
        self._next_request_id = request_id_base

    def serve_one(self, timestamp: float) -> int:
        """Handle one recommendation request; returns its request ID.

        Logs the feature record always; the outcome event is dropped
        with a small probability (clients navigate away, loggers fail),
        which is why ETL joins are lossy in production.
        """
        return self._serve(self._generator.generate_row(self.schema), timestamp)

    def _serve(self, row, timestamp: float) -> int:
        request_id = self._next_request_id
        self._next_request_id += 1
        features = FeatureLog(
            request_id=request_id,
            timestamp=timestamp,
            dense=dict(row.dense),
            sparse={fid: tuple(ids) for fid, ids in row.sparse.items()},
            scores={fid: tuple(ws) for fid, ws in row.scores.items()},
        )
        self._daemon.log(FEATURES_CATEGORY, features)

        if self._rng.random() >= self._event_loss_rate:
            signal = next(iter(row.dense.values()), 0.0)
            p = float(np.clip(self._engagement_rate + 0.1 * signal, 0.01, 0.99))
            event = EventLog(
                request_id=request_id,
                timestamp=timestamp + float(self._rng.exponential(30.0)),
                engaged=bool(self._rng.random() < p),
            )
            self._daemon.log(EVENTS_CATEGORY, event)
        return request_id

    def serve_many(self, n: int, start_time: float = 0.0, rate_per_s: float = 100.0) -> None:
        """Serve *n* requests at a fixed rate, then flush the daemon.

        Feature rows are drawn from the generator in vectorized chunks
        — exactly *n* rows total, never a prefetch beyond what was
        requested, so other consumers sharing the generator are not
        starved of samples.  The chunked draw sequence differs from *n*
        ``serve_one`` calls (column-wise vs row-wise RNG order), but
        the sample statistics are identical.
        """
        for i, row in enumerate(self._generator.iter_rows(self.schema, n)):
            self._serve(row, start_time + i / rate_per_s)
        self._daemon.flush()
