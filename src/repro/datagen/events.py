"""Raw serving-time records: feature logs and event logs.

Section 3.1: "features and events are logged at serving time to avoid
data leakage between model serving and training."  A feature log holds
the inputs a model saw for one (user, item) evaluation; an event log
holds the observed outcome, joined later by ETL on the request ID.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FeatureLog:
    """Features generated for one recommendation request."""

    request_id: int
    timestamp: float
    dense: dict[int, float] = field(default_factory=dict)
    sparse: dict[int, tuple[int, ...]] = field(default_factory=dict)
    scores: dict[int, tuple[float, ...]] = field(default_factory=dict)


@dataclass(frozen=True)
class EventLog:
    """The monitored outcome of one recommendation."""

    request_id: int
    timestamp: float
    engaged: bool  # did the user interact with the recommendation?


def label_from_event(event: EventLog) -> float:
    """Map an outcome event to a training label."""
    return 1.0 if event.engaged else 0.0
