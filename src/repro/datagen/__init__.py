"""Offline data generation: Scribe, LogDevice, serving logs, ETL."""

from .etl import LABELED_CATEGORY, BatchPartitioner, JoinStats, StreamingJoiner
from .events import EventLog, FeatureLog, label_from_event
from .logdevice import Log, LogDevice, LogRecord
from .scribe import Scribe, ScribeCategory, ScribeDaemon
from .serving import EVENTS_CATEGORY, FEATURES_CATEGORY, ServingSimulator

__all__ = [
    "BatchPartitioner",
    "EVENTS_CATEGORY",
    "EventLog",
    "FEATURES_CATEGORY",
    "FeatureLog",
    "JoinStats",
    "LABELED_CATEGORY",
    "Log",
    "LogDevice",
    "LogRecord",
    "Scribe",
    "ScribeCategory",
    "ScribeDaemon",
    "ServingSimulator",
    "StreamingJoiner",
    "label_from_event",
]
