"""LogDevice: a reliable store for append-only, trimmable record logs.

Scribe stores each logical stream in LogDevice (Section 3.1.1).  Logs
assign monotonically increasing sequence numbers (LSNs) on append,
support tailing from any LSN, and can be trimmed from the front once
downstream consumers have checkpointed past a prefix.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterator

from ..common.errors import StorageError


@dataclass(frozen=True)
class LogRecord:
    """One appended record with its sequence number."""

    lsn: int
    payload: Any


class Log:
    """A single append-only, trimmable log."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._records: OrderedDict[int, Any] = OrderedDict()
        self._next_lsn = 0
        self._trim_point = 0  # records below this LSN are gone

    def append(self, payload: Any) -> int:
        """Append a record; returns its LSN."""
        lsn = self._next_lsn
        self._records[lsn] = payload
        self._next_lsn += 1
        return lsn

    def read_from(self, lsn: int, limit: int | None = None) -> list[LogRecord]:
        """Read records with sequence number ≥ *lsn* in order."""
        if lsn < self._trim_point:
            raise StorageError(
                f"log {self.name}: LSN {lsn} is below trim point {self._trim_point}"
            )
        out = []
        for record_lsn, payload in self._records.items():
            if record_lsn >= lsn:
                out.append(LogRecord(record_lsn, payload))
                if limit is not None and len(out) >= limit:
                    break
        return out

    def tail(self, from_lsn: int) -> Iterator[LogRecord]:
        """Iterate records from *from_lsn* to the current end."""
        yield from self.read_from(from_lsn)

    def trim(self, up_to_lsn: int) -> int:
        """Drop records below *up_to_lsn*; returns how many were dropped."""
        if up_to_lsn > self._next_lsn:
            raise StorageError("cannot trim beyond the log head")
        dropped = 0
        for lsn in list(self._records):
            if lsn < up_to_lsn:
                del self._records[lsn]
                dropped += 1
        self._trim_point = max(self._trim_point, up_to_lsn)
        return dropped

    @property
    def head_lsn(self) -> int:
        """LSN the next append will receive."""
        return self._next_lsn

    @property
    def trim_point(self) -> int:
        """Lowest readable LSN."""
        return self._trim_point

    def __len__(self) -> int:
        return len(self._records)


class LogDevice:
    """A namespace of logs."""

    def __init__(self) -> None:
        self._logs: dict[str, Log] = {}

    def log(self, name: str) -> Log:
        """Get or create a log."""
        if name not in self._logs:
            self._logs[name] = Log(name)
        return self._logs[name]

    def log_names(self) -> list[str]:
        """All existing log names."""
        return sorted(self._logs)
