"""Scribe: the global distributed messaging layer.

Every serving host runs a Scribe daemon; services pass raw feature and
event logs to it, and Scribe "groups logs into record-oriented logical
streams and stores each stream into LogDevice" (Section 3.1.1).  The
daemon buffers locally and flushes batches to the category's backing
log, which is how Scribe absorbs producer burstiness.
"""

from __future__ import annotations

from typing import Any

from ..common.errors import StorageError
from .logdevice import LogDevice, LogRecord


class ScribeCategory:
    """One logical stream (category) backed by a LogDevice log."""

    def __init__(self, name: str, logdevice: LogDevice) -> None:
        self.name = name
        self._log = logdevice.log(f"scribe/{name}")

    def write(self, payload: Any) -> int:
        """Append one record to the category; returns its LSN."""
        return self._log.append(payload)

    def read_from(self, lsn: int, limit: int | None = None) -> list[LogRecord]:
        """Read records for a consumer positioned at *lsn*."""
        return self._log.read_from(lsn, limit)

    def trim(self, up_to_lsn: int) -> int:
        """Retention/checkpoint trim."""
        return self._log.trim(up_to_lsn)

    @property
    def head_lsn(self) -> int:
        """Next LSN to be written."""
        return self._log.head_lsn


class Scribe:
    """Category namespace shared by all daemons."""

    def __init__(self, logdevice: LogDevice | None = None) -> None:
        self._logdevice = logdevice or LogDevice()
        self._categories: dict[str, ScribeCategory] = {}

    def category(self, name: str) -> ScribeCategory:
        """Get or create a category."""
        if name not in self._categories:
            self._categories[name] = ScribeCategory(name, self._logdevice)
        return self._categories[name]

    def category_names(self) -> list[str]:
        """All category names."""
        return sorted(self._categories)


class ScribeDaemon:
    """Per-host daemon: local buffering in front of the category logs."""

    def __init__(self, host: str, scribe: Scribe, flush_threshold: int = 64) -> None:
        if flush_threshold <= 0:
            raise StorageError("flush threshold must be positive")
        self.host = host
        self._scribe = scribe
        self._flush_threshold = flush_threshold
        self._buffers: dict[str, list[Any]] = {}
        self.records_forwarded = 0

    def log(self, category: str, payload: Any) -> None:
        """Accept one record from a local service."""
        buffer = self._buffers.setdefault(category, [])
        buffer.append(payload)
        if len(buffer) >= self._flush_threshold:
            self.flush(category)

    def flush(self, category: str | None = None) -> None:
        """Flush one category's buffer (or all of them) to the stream."""
        names = [category] if category is not None else list(self._buffers)
        for name in names:
            buffer = self._buffers.get(name, [])
            stream = self._scribe.category(name)
            for payload in buffer:
                stream.write(payload)
                self.records_forwarded += 1
            self._buffers[name] = []

    @property
    def buffered(self) -> int:
        """Records sitting in local buffers."""
        return sum(len(buffer) for buffer in self._buffers.values())
