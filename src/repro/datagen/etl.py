"""ETL: joining and labeling raw logs into training samples.

Two engines mirror Section 3.1.1:

* :class:`StreamingJoiner` — continuously joins feature and event
  streams on request ID within a time window, publishing labeled
  samples to an output Scribe category (the path that feeds
  in-production model updates).
* :class:`BatchPartitioner` — drains labeled samples into dated
  warehouse partitions (the path that builds offline datasets for
  training new model versions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import StorageError
from ..warehouse.row import Row
from ..warehouse.table import Table
from .events import EventLog, FeatureLog, label_from_event
from .scribe import Scribe

LABELED_CATEGORY = "labeled_samples"


@dataclass
class JoinStats:
    """Join-quality counters."""

    features_seen: int = 0
    events_seen: int = 0
    joined: int = 0
    expired_unjoined: int = 0


class StreamingJoiner:
    """Window-join of feature and event streams on request ID."""

    def __init__(
        self,
        scribe: Scribe,
        features_category: str,
        events_category: str,
        output_category: str = LABELED_CATEGORY,
        join_window_s: float = 600.0,
    ) -> None:
        if join_window_s <= 0:
            raise StorageError("join window must be positive")
        self._features = scribe.category(features_category)
        self._events = scribe.category(events_category)
        self._output = scribe.category(output_category)
        self._window = join_window_s
        self._pending: dict[int, FeatureLog] = {}
        self._feature_cursor = 0
        self._event_cursor = 0
        self.stats = JoinStats()

    def run_once(self, now: float) -> int:
        """Consume new records from both streams; returns samples emitted.

        Features wait in a pending buffer until their event arrives or
        the join window expires (unengaged impressions expire into
        negative samples only if an explicit negative event exists —
        expired features are dropped, mirroring lossy joins).
        """
        for record in self._features.read_from(self._feature_cursor):
            self._feature_cursor = record.lsn + 1
            feature_log: FeatureLog = record.payload
            self._pending[feature_log.request_id] = feature_log
            self.stats.features_seen += 1

        emitted = 0
        for record in self._events.read_from(self._event_cursor):
            self._event_cursor = record.lsn + 1
            event: EventLog = record.payload
            self.stats.events_seen += 1
            feature_log = self._pending.pop(event.request_id, None)
            if feature_log is None:
                continue  # event without (or after) features: dropped
            row = Row(
                label=label_from_event(event),
                dense=dict(feature_log.dense),
                sparse={fid: list(ids) for fid, ids in feature_log.sparse.items()},
                scores={fid: list(ws) for fid, ws in feature_log.scores.items()},
            )
            self._output.write((feature_log.timestamp, row))
            self.stats.joined += 1
            emitted += 1

        # Expire features whose join window has passed.
        expired = [
            rid
            for rid, feature_log in self._pending.items()
            if now - feature_log.timestamp > self._window
        ]
        for rid in expired:
            del self._pending[rid]
            self.stats.expired_unjoined += 1
        return emitted

    @property
    def pending_features(self) -> int:
        """Features still waiting for their outcome event."""
        return len(self._pending)


class BatchPartitioner:
    """Drains labeled samples into dated partitions of a warehouse table."""

    def __init__(
        self,
        scribe: Scribe,
        table: Table,
        input_category: str = LABELED_CATEGORY,
        partition_period_s: float = 86_400.0,
    ) -> None:
        if partition_period_s <= 0:
            raise StorageError("partition period must be positive")
        self._input = scribe.category(input_category)
        self._table = table
        self._period = partition_period_s
        self._cursor = 0
        self.rows_written = 0

    def partition_name_for(self, timestamp: float) -> str:
        """Dated partition name for a sample timestamp."""
        day = int(timestamp // self._period)
        return f"ds={day:05d}"

    def run_once(self) -> int:
        """Drain available labeled samples into partitions."""
        written = 0
        for record in self._input.read_from(self._cursor):
            self._cursor = record.lsn + 1
            timestamp, row = record.payload
            name = self.partition_name_for(timestamp)
            if name not in self._table.partition_names():
                self._table.create_partition(name)
            self._table.partition(name).append(row)
            written += 1
        self.rows_written += written
        return written
