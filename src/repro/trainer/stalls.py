"""Data-stall studies: on-host preprocessing versus disaggregated DPP.

Table 7 is the paper's motivating measurement: running RM1's full
pipeline (read + preprocess + train) on one trainer's own CPUs leaves
the GPUs stalled 56% of the time with CPUs at 92%.  This module
reproduces that study analytically: host CPUs must cover extraction,
transformation, *and* loading, and the achievable preprocessing rate
falls far short of GPU demand.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.serialization import ReportBase, require_keys, revive_floats
from ..common.units import GB
from ..dpp.analytical import per_sample_cost
from ..workloads.hardware import TrainerNodeSpec
from ..workloads.models import ModelConfig, model_by_name
from .gpu import GpuDemand

#: Fraction of host CPU available to preprocessing when co-located with
#: the training loop (the rest feeds CUDA launches, optimizer, OS).
HOST_CPU_AVAILABLE_FRACTION = 0.92
#: On-host pipelines skip RPC serialization and TLS between worker and
#: trainer, so their per-sample DRAM traffic is lower than DPP workers'.
ON_HOST_MEM_TRAFFIC_FACTOR = 0.55


@dataclass(frozen=True)
class StallReport(ReportBase):
    """The Table 7 row: stalls plus host utilization."""

    report_kind = "stall"

    model: ModelConfig
    gpu_stall_fraction: float
    cpu_utilization: float
    mem_bw_utilization: float
    supplied_samples_per_s: float
    demanded_samples_per_s: float

    _FLOAT_FIELDS = (
        "gpu_stall_fraction",
        "cpu_utilization",
        "mem_bw_utilization",
        "supplied_samples_per_s",
        "demanded_samples_per_s",
    )

    def payload(self) -> dict:
        # The model rides along by catalog name (RM1/RM2/RM3), not as
        # an embedded hardware-profile tree.
        row = {name: getattr(self, name) for name in self._FLOAT_FIELDS}
        row["model"] = self.model.name
        return row

    @classmethod
    def from_payload(cls, payload: dict) -> "StallReport":
        require_keys(
            payload,
            required=("model",) + cls._FLOAT_FIELDS,
            context="stall report",
        )
        revived = revive_floats(payload, cls._FLOAT_FIELDS)
        return cls(
            model=model_by_name(payload["model"]),
            **{name: revived[name] for name in cls._FLOAT_FIELDS},
        )

    def metrics(self) -> dict[str, float]:
        return {
            f"stall.{name}": getattr(self, name) for name in self._FLOAT_FIELDS
        }


def on_host_preprocessing_study(
    model: ModelConfig,
    node: TrainerNodeSpec,
    demand: GpuDemand,
) -> StallReport:
    """Reproduce Table 7: preprocess on the trainer's own CPUs.

    Supply is CPU-bound: the host spends every available cycle on
    extract + transform and still cannot match GPU demand, so stall
    fraction is the unmet demand share.
    """
    cost = per_sample_cost(model)
    cpu_capacity = (
        node.total_cores * node.frequency_ghz * 1e9 * HOST_CPU_AVAILABLE_FRACTION
    )
    supply_samples = cpu_capacity / cost.total_cycles
    demand_samples = demand.samples_per_s
    stall = max(0.0, 1.0 - supply_samples / demand_samples)
    achieved = min(supply_samples, demand_samples)

    mem_traffic = (
        achieved * cost.mem_bytes * ON_HOST_MEM_TRAFFIC_FACTOR
    )
    mem_util = mem_traffic / (node.peak_mem_bw_gbs * GB)
    cpu_util = (
        HOST_CPU_AVAILABLE_FRACTION
        if supply_samples < demand_samples
        else demand_samples * cost.total_cycles / (cpu_capacity / HOST_CPU_AVAILABLE_FRACTION)
    )
    return StallReport(
        model=model,
        gpu_stall_fraction=stall,
        cpu_utilization=cpu_util,
        mem_bw_utilization=mem_util,
        supplied_samples_per_s=achieved,
        demanded_samples_per_s=demand_samples,
    )


def dpp_supplied_stall(model: ModelConfig, demand: GpuDemand, n_workers: float,
                       worker_qps: float) -> float:
    """Stall fraction when *n_workers* DPP workers feed the trainer.

    With right-sized worker fleets the stall is zero — the design goal
    of DPP's auto-scaler (Section 3.2.1).
    """
    supply_bytes = n_workers * worker_qps * per_sample_cost(model).tensor_tx_bytes
    return demand.stall_fraction(supply_bytes)
