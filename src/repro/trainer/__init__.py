"""Trainer models: GPU demand, host loading tax, stall studies."""

from .cluster_sim import (
    ClusterConfig,
    ClusterThroughput,
    simulate_cluster,
    supply_for_efficiency,
)
from .gpu import PROJECTED_GROWTH_FACTOR, V100_DEMAND_FACTOR, GpuDemand
from .host import (
    LOADING_CYCLES_PER_BYTE,
    LOADING_MEM_BYTES_PER_BYTE,
    LoadingTax,
    loading_sweep,
    loading_utilization,
    max_loading_rate,
)
from .node import TrainingNode, TrainingProgress
from .stalls import StallReport, dpp_supplied_stall, on_host_preprocessing_study

__all__ = [
    "ClusterConfig",
    "ClusterThroughput",
    "simulate_cluster",
    "supply_for_efficiency",
    "GpuDemand",
    "LOADING_CYCLES_PER_BYTE",
    "LOADING_MEM_BYTES_PER_BYTE",
    "LoadingTax",
    "PROJECTED_GROWTH_FACTOR",
    "StallReport",
    "TrainingNode",
    "TrainingProgress",
    "V100_DEMAND_FACTOR",
    "dpp_supplied_stall",
    "loading_sweep",
    "loading_utilization",
    "max_loading_rate",
    "on_host_preprocessing_study",
]
