"""Trainer-host data loading: the "datacenter tax" resource model.

Section 6.2: even with preprocessing fully offloaded to DPP, loading
tensors over the network costs the trainer host real resources — the
network stack, memory management, TLS decryption, and Thrift
deserialization.  Figure 8 sweeps loading rate against host CPU and
memory-bandwidth utilization; the constants here are calibrated to its
anchor points (≈40% CPU and ≈55% memory bandwidth at RM1's 16.5 GB/s
on the two-socket test node).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ConfigError
from ..common.resources import ResourceUsage, UtilizationReport
from ..workloads.hardware import TrainerNodeSpec

#: Host CPU cycles per loaded byte (network stack + TLS + Thrift).
LOADING_CYCLES_PER_BYTE = 3.39
#: DRAM traffic per loaded byte (TLS ~3x amplification + copies).
LOADING_MEM_BYTES_PER_BYTE = 5.0


@dataclass(frozen=True)
class LoadingTax:
    """Per-byte host cost of ingesting preprocessed tensors."""

    cycles_per_byte: float = LOADING_CYCLES_PER_BYTE
    mem_bytes_per_byte: float = LOADING_MEM_BYTES_PER_BYTE

    def usage_at_rate(self, bytes_per_s: float) -> ResourceUsage:
        """Steady-state host usage at a given loading rate."""
        if bytes_per_s < 0:
            raise ConfigError("loading rate cannot be negative")
        return ResourceUsage(
            cpu_cycles=self.cycles_per_byte * bytes_per_s,
            mem_bytes=self.mem_bytes_per_byte * bytes_per_s,
            nic_rx_bytes=bytes_per_s,
        )


def loading_utilization(
    node: TrainerNodeSpec, bytes_per_s: float, tax: LoadingTax | None = None
) -> UtilizationReport:
    """Host utilization from data loading alone (the Figure 8 curves)."""
    from ..common.resources import HostModel

    host = HostModel(node.resource_spec())
    host.usage = (tax or LoadingTax()).usage_at_rate(bytes_per_s)
    return host.utilization()


def loading_sweep(
    node: TrainerNodeSpec,
    rates_bytes_per_s: list[float],
    tax: LoadingTax | None = None,
) -> list[tuple[float, UtilizationReport]]:
    """Evaluate the Figure 8 sweep at the given loading rates."""
    return [
        (rate, loading_utilization(node, rate, tax)) for rate in rates_bytes_per_s
    ]


def max_loading_rate(node: TrainerNodeSpec, tax: LoadingTax | None = None) -> float:
    """Largest loading rate the host sustains before a resource saturates.

    Memory bandwidth is capped at its ~70% practical ceiling; CPU and
    NIC at 100%.
    """
    from ..common.resources import HostModel

    host = HostModel(node.resource_spec())
    host.usage = (tax or LoadingTax()).usage_at_rate(1.0)
    return host.max_sustainable_scale()
