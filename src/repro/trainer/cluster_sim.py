"""Data-parallel training clusters: synchronized trainers on shared DPP.

Section 2: trainers "synchronize embeddings, activations, and gradients
with each other using collective communication primitives ... iterating
until a certain model quality metric is reached."  Synchronous data
parallelism makes every iteration as slow as the *slowest* trainer —
so one under-fed node stalls the whole job, which is why DPP sizes its
fleet against aggregate demand plus imbalance.

The model here is iteration-level: each trainer needs one batch per
iteration; batch arrivals are governed by the per-trainer share of DPP
supply, and per-iteration collective sync adds a fixed cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import ConfigError
from ..common.simclock import SimClock


@dataclass(frozen=True)
class ClusterConfig:
    """One synchronous data-parallel job's shape."""

    n_trainers: int
    compute_time_s: float  # forward+backward per iteration
    sync_time_s: float  # collective communication per iteration
    batches_per_s_supplied: float  # aggregate DPP supply, all trainers
    supply_imbalance: float = 0.0  # coefficient of variation across trainers

    def __post_init__(self) -> None:
        if self.n_trainers < 1:
            raise ConfigError("need at least one trainer")
        if self.compute_time_s <= 0 or self.sync_time_s < 0:
            raise ConfigError("iteration times must be non-negative")
        if self.batches_per_s_supplied <= 0:
            raise ConfigError("supply must be positive")
        if not 0 <= self.supply_imbalance < 1:
            raise ConfigError("imbalance must be in [0, 1)")


@dataclass(frozen=True)
class ClusterThroughput:
    """Steady-state outcome of one configuration."""

    iterations_per_s: float
    ideal_iterations_per_s: float
    stall_fraction: float  # share of iteration time waiting for data

    @property
    def efficiency(self) -> float:
        """Achieved over ideal iteration rate."""
        return self.iterations_per_s / self.ideal_iterations_per_s


def simulate_cluster(
    config: ClusterConfig,
    n_iterations: int = 2_000,
    seed: int = 0,
    clock: SimClock | None = None,
) -> ClusterThroughput:
    """Iteration-level simulation of a synchronous job.

    Each iteration: every trainer waits for its next batch (exponential
    inter-arrival around its supply share), then computes; the job
    syncs when the slowest trainer finishes.  The data wait overlaps
    nothing (mini-batch SGD consumes a fresh batch per iteration).

    Runs as a self-rescheduling process on a :class:`SimClock` — by
    default a private one, or a shared fleet clock so training-side and
    preprocessing-side processes interleave in one event order.
    """
    if n_iterations < 1:
        raise ConfigError("need at least one iteration")
    rng = np.random.default_rng(seed)
    per_trainer_supply = config.batches_per_s_supplied / config.n_trainers
    # Per-trainer mean supply rates with the configured imbalance.
    rates = per_trainer_supply * np.clip(
        rng.normal(1.0, config.supply_imbalance, size=config.n_trainers), 0.05, None
    )
    rates = rates / rates.mean() * per_trainer_supply  # preserve the aggregate

    compute = config.compute_time_s
    sync = config.sync_time_s
    ideal_iteration = compute + sync

    if clock is None:
        # Private-clock fast path: with no co-simulated processes to
        # interleave, the event chain is strictly sequential, so the
        # same iteration times accumulate in a plain loop — identical
        # RNG draws, identical totals, no heap churn.  This is the path
        # `supply_for_efficiency` hammers (40 binary-search probes).
        inv_rates = 1.0 / rates
        total_time = 0.0
        total_wait = 0.0
        for _ in range(n_iterations):
            waits = rng.exponential(inv_rates)
            data_wait = float(np.max(np.maximum(waits - ideal_iteration, 0.0)))
            total_wait += data_wait
            total_time += ideal_iteration + data_wait
        return ClusterThroughput(
            iterations_per_s=n_iterations / total_time,
            ideal_iterations_per_s=1.0 / ideal_iteration,
            stall_fraction=total_wait / total_time,
        )
    start = clock.now
    state = {"remaining": n_iterations, "wait": 0.0, "end": start}

    def iteration() -> None:
        # Batch wait per trainer this iteration; queueing backlog is
        # approximated by the renewal process' exponential gap.
        waits = rng.exponential(1.0 / rates)
        data_wait = float(np.max(np.maximum(waits - ideal_iteration, 0.0)))
        state["wait"] += data_wait
        state["remaining"] -= 1
        if state["remaining"] > 0:
            clock.schedule(ideal_iteration + data_wait, iteration)
        else:
            # The final iteration still occupies the cluster; advance
            # time past it so the makespan includes its duration.
            clock.schedule(ideal_iteration + data_wait, finish)

    def finish() -> None:
        state["end"] = clock.now

    clock.schedule(0.0, iteration)
    # Step only until this job's chain completes: on a shared clock,
    # foreign events up to that point interleave (that is the purpose),
    # but events beyond it stay for the external driver, and the
    # makespan measures this job alone.
    while state["remaining"] > 0 or state["end"] == start:
        if not clock.step():
            raise ConfigError("clock drained before the job finished")
    total_time = state["end"] - start
    return ClusterThroughput(
        iterations_per_s=n_iterations / total_time,
        ideal_iterations_per_s=1.0 / ideal_iteration,
        stall_fraction=state["wait"] / total_time,
    )


def supply_for_efficiency(
    config: ClusterConfig, target_efficiency: float, seed: int = 0
) -> float:
    """Aggregate supply multiplier needed to reach *target_efficiency*.

    Binary-searches the supply scale; answers "how much headroom above
    nominal demand must DPP provision to absorb straggler effects" —
    the reason the controller targets non-zero buffers rather than
    supply == demand.
    """
    if not 0 < target_efficiency < 1:
        raise ConfigError("target efficiency must be in (0, 1)")
    low, high = 0.5, 64.0
    for _ in range(40):
        mid = (low + high) / 2
        scaled = ClusterConfig(
            n_trainers=config.n_trainers,
            compute_time_s=config.compute_time_s,
            sync_time_s=config.sync_time_s,
            batches_per_s_supplied=config.batches_per_s_supplied * mid,
            supply_imbalance=config.supply_imbalance,
        )
        outcome = simulate_cluster(scaled, n_iterations=500, seed=seed)
        if outcome.efficiency < target_efficiency:
            low = mid
        else:
            high = mid
    return high
