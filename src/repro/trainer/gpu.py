"""GPU ingestion demand: how hard trainers pull on the DSI pipeline.

Section 6.1 measures each model's tensor ingestion rate per 8-GPU node
(Table 8) and projects 3.5× growth within two years.  Demand is a
property of the model (operational intensity) and the accelerator
generation, not of the data pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ConfigError
from ..workloads.models import ModelConfig

#: Relative ingest demand of a V100-generation node versus the
#: A100-generation nodes behind Table 8 (used by the Table 7 study).
V100_DEMAND_FACTOR = 0.268
#: Section 6.1's two-year demand growth projection.
PROJECTED_GROWTH_FACTOR = 3.5


@dataclass(frozen=True)
class GpuDemand:
    """Ingestion demand of one training node for one model."""

    model: ModelConfig
    generation_factor: float = 1.0  # 1.0 = Table 8's A100-generation nodes

    def __post_init__(self) -> None:
        if self.generation_factor <= 0:
            raise ConfigError("generation factor must be positive")

    @property
    def bytes_per_s(self) -> float:
        """Tensor bytes/s the node's GPUs consume when never stalled."""
        return self.model.trainer_bytes_per_s * self.generation_factor

    @property
    def samples_per_s(self) -> float:
        """Samples/s the node's GPUs consume when never stalled."""
        return self.model.samples_per_s_per_trainer * self.generation_factor

    def projected(self, growth: float = PROJECTED_GROWTH_FACTOR) -> "GpuDemand":
        """Demand after the paper's projected hardware/software growth."""
        return GpuDemand(self.model, self.generation_factor * growth)

    def stall_fraction(self, supplied_bytes_per_s: float) -> float:
        """Fraction of GPU time stalled given a data-supply rate.

        With supply ≥ demand the GPUs never wait; below that, stall
        time is the unmet fraction of demand (fluid approximation of
        Section 6's "% of GPU stall time").
        """
        if supplied_bytes_per_s < 0:
            raise ConfigError("supply cannot be negative")
        if supplied_bytes_per_s >= self.bytes_per_s:
            return 0.0
        return 1.0 - supplied_bytes_per_s / self.bytes_per_s
