"""Training nodes: consuming tensors from DPP in executable sessions.

The executable counterpart of the analytical studies: a
:class:`TrainingNode` owns a DPP client, pulls batches through the
PyTorch-hook interface, and tracks ingest counters plus simulated
training steps.  Used by integration tests and examples to close the
loop from raw logs to consumed tensors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import DppError
from ..dpp.client import DppClient
from ..dpp.tensors import TensorBatch
from ..workloads.hardware import TrainerNodeSpec
from .host import LoadingTax


@dataclass
class TrainingProgress:
    """Counters for one node's training loop."""

    steps: int = 0
    samples: int = 0
    bytes_ingested: int = 0
    stalled_polls: int = 0


class TrainingNode:
    """One 8-GPU node running a data-parallel training loop."""

    def __init__(
        self,
        spec: TrainerNodeSpec,
        client: DppClient,
        tax: LoadingTax | None = None,
    ) -> None:
        self.spec = spec
        self.client = client
        self.tax = tax or LoadingTax()
        self.progress = TrainingProgress()
        self._consumed: list[TensorBatch] = []

    def train_step(self) -> bool:
        """Pull one batch and run one SGD step; False on a data stall."""
        batch = self.client.get_batch()
        if batch is None:
            self.progress.stalled_polls += 1
            return False
        self._step_on(batch)
        return True

    def _step_on(self, batch: TensorBatch) -> None:
        if batch.n_rows == 0:
            raise DppError("received an empty tensor batch")
        self.progress.steps += 1
        self.progress.samples += batch.n_rows
        self.progress.bytes_ingested += batch.wire_bytes()

    def train_until_exhausted(self, max_steps: int = 1_000_000) -> TrainingProgress:
        """Consume batches until the client runs dry."""
        for _ in range(max_steps):
            if not self.train_step():
                break
        return self.progress

    def loading_usage(self, elapsed_s: float):
        """Host resource usage implied by the achieved ingest rate."""
        if elapsed_s <= 0:
            raise DppError("elapsed time must be positive")
        rate = self.progress.bytes_ingested / elapsed_s
        return self.tax.usage_at_rate(rate)
