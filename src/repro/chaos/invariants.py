"""Delivery invariants: what must hold after every chaos run.

Three classes of check, mirroring the paper's correctness claims:

* **delivery** — every tensor batch the (sampled) split set implies
  reaches a client exactly once; at-least-once where the injected
  faults legitimately cause replays, but never *lost*;
* **no stranding** — no batch is left in a dead or drained worker's
  buffer once the session reports done;
* **recovery determinism** — a master rebuilt from the same spec and
  files plans the identical split set, and a restored master agrees
  byte-for-byte with its checkpoint source.

Checkers return :class:`Violation` lists rather than raising, so a
runner can collect every broken invariant from one run.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..dpp.master import DppMaster, MasterCheckpoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dpp.service import DppSession
    from .report import DeliveryRecord


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough detail to debug the run."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail}"


def expected_deliveries(session: "DppSession") -> dict[tuple[int, int], int]:
    """The session's delivery obligation: (split_id, sequence) → rows.

    Derived from the master's (sampled) split set and the worker's
    deterministic rebatching: each stripe yields ceil(rows/batch_size)
    mini-batches, numbered sequentially within the split.  Stable
    across failovers and restarts because split sampling is.
    """
    batch_size = session.spec.batch_size
    expected: dict[tuple[int, int], int] = {}
    for split in session.master.primary.splits:
        footer = session.footers[split.file_name]
        sequence = 0
        for stripe_index in range(split.stripe_start, split.stripe_end):
            rows = footer.stripes[stripe_index].row_count
            if rows <= batch_size:
                expected[(split.split_id, sequence)] = rows
                sequence += 1
            else:
                for start in range(0, rows, batch_size):
                    expected[(split.split_id, sequence)] = (
                        min(start + batch_size, rows) - start
                    )
                    sequence += 1
    return expected


def check_delivery(
    expected: dict[tuple[int, int], int],
    records: Iterable["DeliveryRecord"],
    allow_replays: bool,
) -> list[Violation]:
    """Coverage, uniqueness, and row-count checks on delivered batches."""
    violations: list[Violation] = []
    delivered: Counter[tuple[int, int]] = Counter()
    for record in records:
        key = (record.split_id, record.sequence)
        delivered[key] += 1
        if key not in expected:
            violations.append(
                Violation(
                    "phantom-batch",
                    f"delivered batch {key} matches no planned split batch",
                )
            )
        elif record.n_rows != expected[key]:
            violations.append(
                Violation(
                    "row-count",
                    f"batch {key} delivered {record.n_rows} rows, "
                    f"expected {expected[key]}",
                )
            )
    missing = sorted(set(expected) - set(delivered))
    for key in missing:
        violations.append(
            Violation(
                "lost-batch",
                f"batch {key} ({expected[key]} rows) never reached a client",
            )
        )
    if not allow_replays:
        for key, count in sorted(delivered.items()):
            if count > 1:
                violations.append(
                    Violation(
                        "duplicate-delivery",
                        f"batch {key} delivered {count} times under "
                        "exactly-once expectations",
                    )
                )
    return violations


def check_no_stranded(session: "DppSession") -> list[Violation]:
    """No batch may survive in a dead or drained worker's buffer."""
    violations: list[Violation] = []
    for worker in session.workers:
        if not worker.alive and worker.buffer:
            violations.append(
                Violation(
                    "stranded-buffer",
                    f"dead worker {worker.worker_id} still buffers "
                    f"{len(worker.buffer)} batches",
                )
            )
        elif worker.draining and worker.buffer:
            violations.append(
                Violation(
                    "stranded-buffer",
                    f"drained worker {worker.worker_id} never served out "
                    f"{len(worker.buffer)} batches",
                )
            )
    return violations


def check_split_set_determinism(a: DppMaster, b: DppMaster) -> list[Violation]:
    """Two masters planned from the same spec must sample identically."""
    if a.split_ids == b.split_ids:
        return []
    only_a = sorted(a.split_ids - b.split_ids)
    only_b = sorted(b.split_ids - a.split_ids)
    return [
        Violation(
            "split-set-divergence",
            f"replanned master disagrees on the sampled split set "
            f"(only-first={only_a[:5]}, only-second={only_b[:5]})",
        )
    ]


def check_checkpoint_agreement(
    restored: DppMaster, source: MasterCheckpoint
) -> list[Violation]:
    """A restored master must agree byte-for-byte with its source."""
    violations: list[Violation] = []
    if not source.completed_split_ids <= restored.split_ids:
        violations.append(
            Violation(
                "dangling-checkpoint",
                "checkpoint references splits the restored master never planned: "
                f"{sorted(source.completed_split_ids - restored.split_ids)[:5]}",
            )
        )
    if restored.checkpoint() != source:
        violations.append(
            Violation(
                "restore-divergence",
                "restored master's checkpoint differs from its source "
                f"({restored.completed_splits} completed vs "
                f"{len(source.completed_split_ids)} checkpointed)",
            )
        )
    return violations
