"""Chaos: failure-injection scenarios and delivery-invariant checking.

The scenario plane for the recovery claims of Section 3.2.1: drive
full DPP sessions (and fleet-hosted sessions) through scripted or
seeded fault schedules — worker crashes mid-split, graceful drains
under load, master failovers, checkpoint restores across simulated
restarts, degraded Tectonic bandwidth — then check that every sampled
row reached a client exactly once (at-least-once where crashes
legitimately replay), that no batch died stranded in a worker buffer,
and that restored masters agree byte-for-byte with their checkpoints.
"""

from .faults import (
    AT_LEAST_ONCE_KINDS,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    seeded_schedule,
)
from .invariants import (
    Violation,
    check_checkpoint_agreement,
    check_delivery,
    check_no_stranded,
    check_split_set_determinism,
    expected_deliveries,
)
from .report import ChaosReport, DeliveryRecord
from .runner import ChaosRunner, run_scenario, schedule_fleet_faults

__all__ = [
    "AT_LEAST_ONCE_KINDS",
    "ChaosReport",
    "ChaosRunner",
    "DeliveryRecord",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "Violation",
    "check_checkpoint_agreement",
    "check_delivery",
    "check_no_stranded",
    "check_split_set_determinism",
    "expected_deliveries",
    "run_scenario",
    "schedule_fleet_faults",
    "seeded_schedule",
]
