"""Chaos-run reports: what was injected, what was delivered, what broke."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .invariants import Violation


@dataclass(frozen=True)
class DeliveryRecord:
    """One tensor batch observed arriving at a client."""

    round_index: int
    client_id: str
    split_id: int
    sequence: int
    n_rows: int


@dataclass
class ChaosReport:
    """Outcome of one chaos scenario run."""

    scenario: str
    rounds: int
    allow_replays: bool
    faults_injected: list[str] = field(default_factory=list)
    records: list[DeliveryRecord] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)
    expected_batches: int = 0

    @property
    def ok(self) -> bool:
        """Whether every delivery invariant held."""
        return not self.violations

    @property
    def delivered_batches(self) -> int:
        """Batches that reached clients, replays included."""
        return len(self.records)

    @property
    def replayed_batches(self) -> int:
        """Deliveries beyond the first per batch identity."""
        counts = Counter((r.split_id, r.sequence) for r in self.records)
        return sum(count - 1 for count in counts.values())

    @property
    def rows_delivered(self) -> int:
        """Total rows across all deliveries."""
        return sum(r.n_rows for r in self.records)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        mode = "at-least-once" if self.allow_replays else "exactly-once"
        lines = [
            f"chaos scenario {self.scenario!r}: "
            f"{'PASS' if self.ok else 'FAIL'} ({mode})",
            f"  rounds={self.rounds} "
            f"expected={self.expected_batches} "
            f"delivered={self.delivered_batches} "
            f"replayed={self.replayed_batches}",
        ]
        if self.faults_injected:
            lines.append("  faults:")
            lines.extend(f"    {fault}" for fault in self.faults_injected)
        if self.violations:
            lines.append("  violations:")
            lines.extend(f"    {violation}" for violation in self.violations)
        return "\n".join(lines)
