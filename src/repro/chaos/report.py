"""Chaos-run reports: what was injected, what was delivered, what broke."""

from __future__ import annotations

from collections import Counter
from dataclasses import asdict, dataclass, field

from ..common.errors import DppError
from ..common.serialization import ReportBase, require_keys
from .invariants import Violation


@dataclass(frozen=True)
class DeliveryRecord:
    """One tensor batch observed arriving at a client."""

    round_index: int
    client_id: str
    split_id: int
    sequence: int
    n_rows: int


@dataclass
class ChaosReport(ReportBase):
    """Outcome of one chaos scenario run."""

    report_kind = "chaos"

    scenario: str
    rounds: int
    allow_replays: bool
    faults_injected: list[str] = field(default_factory=list)
    records: list[DeliveryRecord] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)
    expected_batches: int = 0

    @property
    def ok(self) -> bool:
        """Whether every delivery invariant held."""
        return not self.violations

    @property
    def delivered_batches(self) -> int:
        """Batches that reached clients, replays included."""
        return len(self.records)

    @property
    def replayed_batches(self) -> int:
        """Deliveries beyond the first per batch identity."""
        counts = Counter((r.split_id, r.sequence) for r in self.records)
        return sum(count - 1 for count in counts.values())

    @property
    def rows_delivered(self) -> int:
        """Total rows across all deliveries."""
        return sum(r.n_rows for r in self.records)

    # -- shared telemetry surface ----------------------------------------------

    def payload(self) -> dict:
        return {
            "scenario": self.scenario,
            "rounds": self.rounds,
            "allow_replays": self.allow_replays,
            "expected_batches": self.expected_batches,
            "faults_injected": list(self.faults_injected),
            "records": [asdict(record) for record in self.records],
            "violations": [asdict(violation) for violation in self.violations],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ChaosReport":
        require_keys(
            payload,
            required=(
                "scenario",
                "rounds",
                "allow_replays",
                "expected_batches",
                "faults_injected",
                "records",
                "violations",
            ),
            context="chaos report",
        )
        records = []
        for row in payload["records"]:
            require_keys(
                row,
                required=("round_index", "client_id", "split_id", "sequence", "n_rows"),
                context="chaos delivery record",
            )
            records.append(DeliveryRecord(**row))
        violations = []
        for row in payload["violations"]:
            require_keys(
                row, required=("invariant", "detail"), context="chaos violation"
            )
            violations.append(Violation(**row))
        return cls(
            scenario=payload["scenario"],
            rounds=int(payload["rounds"]),
            allow_replays=bool(payload["allow_replays"]),
            faults_injected=list(payload["faults_injected"]),
            records=records,
            violations=violations,
            expected_batches=int(payload["expected_batches"]),
        )

    def metrics(self) -> dict[str, float]:
        return {
            "chaos.rounds": float(self.rounds),
            "chaos.expected_batches": float(self.expected_batches),
            "chaos.delivered_batches": float(self.delivered_batches),
            "chaos.replayed_batches": float(self.replayed_batches),
            "chaos.rows_delivered": float(self.rows_delivered),
            "chaos.faults_injected": float(len(self.faults_injected)),
            "chaos.violations": float(len(self.violations)),
        }

    def merge(self, other: "ReportBase") -> "ChaosReport":
        """Fold another scenario's run in (a chaos *session* view):
        deliveries, faults, violations, and obligations accumulate;
        replay tolerance widens to the union."""
        if not isinstance(other, ChaosReport):
            raise DppError("can only merge ChaosReport into ChaosReport")
        if other.scenario != self.scenario:
            self.scenario = f"{self.scenario}+{other.scenario}"
        self.rounds += other.rounds
        self.allow_replays = self.allow_replays or other.allow_replays
        self.faults_injected.extend(other.faults_injected)
        self.records.extend(other.records)
        self.violations.extend(other.violations)
        self.expected_batches += other.expected_batches
        return self

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        mode = "at-least-once" if self.allow_replays else "exactly-once"
        lines = [
            f"chaos scenario {self.scenario!r}: "
            f"{'PASS' if self.ok else 'FAIL'} ({mode})",
            f"  rounds={self.rounds} "
            f"expected={self.expected_batches} "
            f"delivered={self.delivered_batches} "
            f"replayed={self.replayed_batches}",
        ]
        if self.faults_injected:
            lines.append("  faults:")
            lines.extend(f"    {fault}" for fault in self.faults_injected)
        if self.violations:
            lines.append("  violations:")
            lines.extend(f"    {violation}" for violation in self.violations)
        return "\n".join(lines)
