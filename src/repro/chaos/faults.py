"""Fault schedules: what breaks, and when.

A chaos scenario is a session plus a :class:`FaultSchedule` — a list of
:class:`FaultEvent`\\ s pinned to pump rounds.  Schedules are either
scripted (regression scenarios that replay a known-bad sequence) or
seeded (:func:`seeded_schedule` draws a reproducible random mix, so CI
can sweep many seeds cheaply).

The fault menu covers the failure modes Section 3.2.1's control plane
claims to survive: worker crashes (stateless — requeue is recovery),
graceful drains (scale-down must serve out buffers), primary-master
failover (replication), full master restarts (checkpoint restore), and
degraded Tectonic bandwidth.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from ..common.errors import DppError


class FaultKind(enum.Enum):
    """One injectable failure mode."""

    WORKER_CRASH = "worker_crash"  # kill a live worker, buffer and all
    WORKER_CRASH_MID_SPLIT = "worker_crash_mid_split"  # die inside a split
    WORKER_DRAIN = "worker_drain"  # graceful scale-down by one
    SCALE_UP = "scale_up"  # autoscaler-style launch
    MASTER_FAILOVER = "master_failover"  # promote the standby replica
    MASTER_RESTART = "master_restart"  # full restart from checkpoint
    DEGRADE_STORAGE = "degrade_storage"  # throttle Tectonic bandwidth
    RESTORE_STORAGE = "restore_storage"  # undo the throttle


#: Faults after which replayed batches are legitimate: a crash can
#: reopen a split whose batches were partially served, and a restart
#: replays completions newer than the checkpoint.  Everything else must
#: stay exactly-once.
AT_LEAST_ONCE_KINDS = frozenset(
    {
        FaultKind.WORKER_CRASH,
        FaultKind.WORKER_CRASH_MID_SPLIT,
        FaultKind.MASTER_RESTART,
    }
)


@dataclass(frozen=True)
class FaultEvent:
    """One fault, pinned to a pump round.

    ``magnitude`` is kind-specific: worker count for scale/drain
    events, the bandwidth fraction in (0, 1] for storage degradation,
    batches-into-the-split for mid-split crashes.
    """

    round_index: int
    kind: FaultKind
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.round_index < 0:
            raise DppError("fault round cannot be negative")
        if self.kind is FaultKind.DEGRADE_STORAGE and not 0 < self.magnitude <= 1:
            raise DppError("storage degradation fraction must be in (0, 1]")

    def describe(self) -> str:
        """Human-readable one-liner for the report's fault log."""
        return f"round {self.round_index}: {self.kind.value} (x{self.magnitude:g})"


class FaultSchedule:
    """An ordered set of fault events a runner injects round by round."""

    def __init__(self, events: list[FaultEvent] | tuple[FaultEvent, ...] = ()) -> None:
        self._events = sorted(events, key=lambda e: e.round_index)

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        """All events, in round order."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def due(self, round_index: int) -> list[FaultEvent]:
        """Events scheduled for exactly *round_index*."""
        return [e for e in self._events if e.round_index == round_index]

    @property
    def last_round(self) -> int:
        """Round of the latest event; -1 when empty."""
        return self._events[-1].round_index if self._events else -1

    def allows_replays(self) -> bool:
        """Whether the schedule contains any at-least-once fault."""
        return any(e.kind in AT_LEAST_ONCE_KINDS for e in self._events)


def seeded_schedule(
    seed: int,
    n_faults: int = 4,
    max_round: int = 10,
    kinds: tuple[FaultKind, ...] = (
        FaultKind.WORKER_CRASH,
        FaultKind.WORKER_CRASH_MID_SPLIT,
        FaultKind.WORKER_DRAIN,
        FaultKind.SCALE_UP,
        FaultKind.MASTER_FAILOVER,
        FaultKind.MASTER_RESTART,
    ),
) -> FaultSchedule:
    """Draw a reproducible random fault mix for seed-sweep testing.

    The same *seed* always produces the same schedule (a dedicated
    :class:`random.Random`, never process-global state).
    """
    if n_faults < 1:
        raise DppError("a seeded schedule needs at least one fault")
    if not kinds:
        raise DppError("a seeded schedule needs a non-empty fault menu")
    rng = random.Random(seed)
    events = [
        FaultEvent(round_index=rng.randrange(max_round + 1), kind=rng.choice(kinds))
        for _ in range(n_faults)
    ]
    return FaultSchedule(events)
