"""Scenario runners: drive sessions through fault schedules.

:class:`ChaosRunner` is an instrumented version of
:meth:`~repro.dpp.service.DppSession.pump`: same fair round-robin
scheduler, but between rounds it injects the schedule's due faults and
it records every delivered batch's provenance.  After the run it
evaluates the delivery invariants (:mod:`repro.chaos.invariants`) and
returns a :class:`~repro.chaos.report.ChaosReport`.

:func:`schedule_fleet_faults` is the fleet-scale counterpart: it pins
fault events to virtual time on a :class:`~repro.fleet.simulator.FleetSimulator`'s
clock — worker churn inside tenant jobs, region-wide Tectonic
degradation — using the simulator's public fault-injection hooks.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from ..common.errors import ConfigError, DppError
from ..dpp.service import DppSession
from ..telemetry.tracer import NULL_TRACER, Tracer
from .faults import FaultEvent, FaultKind, FaultSchedule
from .invariants import (
    check_checkpoint_agreement,
    check_delivery,
    check_no_stranded,
    check_split_set_determinism,
    expected_deliveries,
)
from .report import ChaosReport, DeliveryRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fleet.simulator import FleetSimulator


class ChaosRunner:
    """Runs one DPP session to completion under a fault schedule."""

    def __init__(
        self,
        session: DppSession,
        schedule: FaultSchedule,
        scenario: str = "chaos",
        allow_replays: bool | None = None,
        seed: int = 0,
        max_rounds: int = 100_000,
        client_batches_per_round: int | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        """*allow_replays* defaults to whatever the schedule implies:
        crash and restart faults legitimately replay batches
        (at-least-once); drain/failover/scale schedules must stay
        exactly-once.  *seed* only randomizes victim selection.

        *client_batches_per_round* throttles consumption (slow
        trainers): buffers stay backlogged across rounds, so crashes
        land on workers holding completed-but-unserved batches — the
        stranding scenario the provenance requeue exists for.
        Unthrottled clients drain everything each round and crashes
        mostly hit empty buffers.
        """
        if client_batches_per_round is not None and client_batches_per_round < 1:
            raise DppError("client_batches_per_round must be positive")
        self.session = session
        self.schedule = schedule
        self.scenario = scenario
        self.allow_replays = (
            schedule.allows_replays() if allow_replays is None else allow_replays
        )
        self.max_rounds = max_rounds
        self.client_batches_per_round = client_batches_per_round
        self._rng = random.Random(seed)
        self._nominal_rate: float | None = None
        # The chaos pump has no wall clock; its virtual time axis is
        # the round index, so spans span whole rounds.
        self._round = 0
        self.tracer = tracer or NULL_TRACER
        if self.tracer.enabled:
            self.tracer.bind_clock(lambda: float(self._round))
            session.attach_tracer(self.tracer)

    # -- fault application ----------------------------------------------------

    def _survivors(self) -> list:
        """Live workers with no crash pending — armed workers are dead
        workers walking and must not count toward the keep-one-alive
        guard, or an armed crash firing after a direct kill could
        leave the session with zero live workers."""
        return [w for w in self.session.live_workers if not w.crash_armed]

    def _apply(self, event: FaultEvent, report: ChaosReport) -> None:
        session = self.session
        kind = event.kind
        note = event.describe()
        if kind is FaultKind.WORKER_CRASH:
            victims = self._survivors()
            if len(victims) > 1:
                self._rng.choice(victims).fail()
            else:
                note += " [skipped: last live worker]"
        elif kind is FaultKind.WORKER_CRASH_MID_SPLIT:
            victims = self._survivors()
            if len(victims) > 1:
                self._rng.choice(victims).inject_crash(
                    after_batches=max(1, int(event.magnitude))
                )
            else:
                note += " [skipped: last live worker]"
        elif kind is FaultKind.WORKER_DRAIN:
            count = min(int(event.magnitude), len(self._survivors()) - 1)
            if count > 0:
                session.scale(-count)
            else:
                note += " [skipped: last live worker]"
        elif kind is FaultKind.SCALE_UP:
            session.scale(+max(1, int(event.magnitude)))
        elif kind is FaultKind.MASTER_FAILOVER:
            session.master.fail_over()
        elif kind is FaultKind.MASTER_RESTART:
            self._restart_master(report)
        elif kind is FaultKind.DEGRADE_STORAGE:
            note = self._set_storage_rate(event.magnitude, note)
        elif kind is FaultKind.RESTORE_STORAGE:
            note = self._set_storage_rate(1.0, note)
        else:  # pragma: no cover - exhaustive over FaultKind
            raise DppError(f"unhandled fault kind {kind}")
        report.faults_injected.append(note)
        if self.tracer.enabled:
            self.tracer.instant(
                "fault.inject", actor="chaos", kind=kind.value, note=note
            )
            self.tracer.metrics.counter("chaos.faults_injected").inc()
            self.tracer.log("fault injected", kind=kind.value, note=note)

    def _restart_master(self, report: ChaosReport) -> None:
        """Simulate a master-process restart and verify recovery
        determinism: the rebuilt master must replan the identical split
        set and agree byte-for-byte with the checkpoint it restored."""
        session = self.session
        before = session.master.primary
        checkpoint = session.master.checkpoint()
        session.restart_master()
        report.violations.extend(
            check_split_set_determinism(before, session.master.primary)
        )
        report.violations.extend(
            check_checkpoint_agreement(session.master.primary, checkpoint)
        )

    def _set_storage_rate(self, fraction: float, note: str) -> str:
        filesystem = self.session.filesystem
        set_rate = getattr(filesystem, "set_rate", None)
        if set_rate is None:
            return note + " [skipped: filesystem is not rate-limited]"
        if self._nominal_rate is None:
            self._nominal_rate = filesystem.rate_bytes_per_s
        set_rate(self._nominal_rate * fraction)
        return note

    # -- the instrumented pump -------------------------------------------------

    def run(self) -> ChaosReport:
        """Drive the session to completion, injecting and checking."""
        session = self.session
        expected = expected_deliveries(session)
        report = ChaosReport(
            scenario=self.scenario,
            rounds=0,
            allow_replays=self.allow_replays,
            expected_batches=len(expected),
        )
        records = report.records
        endgame = False
        tracer = self.tracer
        traced = tracer.enabled
        for round_index in range(self.max_rounds):
            self._round = round_index
            if traced:
                tracer.begin("chaos.round", actor="chaos", round=round_index)
            for event in self.schedule.due(round_index):
                self._apply(event, report)
            if session.master.done and not any(
                worker.buffer for worker in session.serving_workers
            ):
                report.rounds = round_index
                if traced:
                    # Completion check only — a zero-duration round.
                    tracer.end(actor="chaos")
                break
            if not session.master.done:
                # A crash can reopen stranded splits (done regresses)
                # and a scale-up can outgrow the widened fan-out; re-arm
                # the endgame so the next completion re-widens.
                endgame = False
            elif not endgame:
                endgame = True
                for client in session.clients:
                    client.max_connections = max(
                        client.max_connections, len(session.serving_workers)
                    )
                    client.refresh_partition()
            if not session.master.done and not session.live_workers:
                raise DppError("chaos run stalled: no live workers")
            progressed = False
            for worker in list(session.live_workers):
                if not session.master.done and worker.wants_work:
                    progressed |= worker.process_one_split()
            quota = self.client_batches_per_round
            for client in session.clients:
                pulled = 0
                while quota is None or pulled < quota:
                    batch = client.get_batch()
                    if batch is None:
                        break
                    pulled += 1
                    if batch.split_id is None:
                        raise DppError("delivered batch lacks split provenance")
                    records.append(
                        DeliveryRecord(
                            round_index=round_index,
                            client_id=client.client_id,
                            split_id=batch.split_id,
                            sequence=batch.sequence,
                            n_rows=batch.n_rows,
                        )
                    )
            session.retire_drained_workers()
            if traced:
                tracer.counter("chaos.delivered", len(records), actor="chaos")
                self._round = round_index + 1
                tracer.end(actor="chaos")
        else:
            raise DppError("chaos run exceeded max_rounds")
        if self._nominal_rate is not None:
            # A degrade whose paired restore landed after completion
            # must not leak into the filesystem's next user.
            session.filesystem.set_rate(self._nominal_rate)
        report.violations.extend(
            check_delivery(expected, records, self.allow_replays)
        )
        report.violations.extend(check_no_stranded(session))
        return report


def run_scenario(
    session: DppSession,
    schedule: FaultSchedule,
    scenario: str = "chaos",
    **kwargs,
) -> ChaosReport:
    """One-call convenience: build a runner and run it."""
    return ChaosRunner(session, schedule, scenario=scenario, **kwargs).run()


# -- fleet-scale chaos ---------------------------------------------------------


def schedule_fleet_faults(
    simulator: "FleetSimulator",
    faults: list[FaultEvent] | FaultSchedule,
    job_ids: list[int],
) -> list[str]:
    """Pin fault events to a fleet simulator's virtual clock.

    *faults* is a plain event list or a :class:`FaultSchedule` (the
    sweep plane ships schedules around as one picklable object).
    ``round_index`` is reinterpreted as *seconds* of virtual time from
    now.  Worker crashes hit the job drawn round-robin from *job_ids*;
    storage events hit the shared fabric.  Returns a log list that
    fills in as events fire — inspect it after ``run()``.

    Only fleet-meaningful kinds are accepted: per-session faults
    (drains, failovers, restarts) belong to :class:`ChaosRunner`.
    """
    if isinstance(faults, FaultSchedule):
        faults = list(faults.events)
    supported = {
        FaultKind.WORKER_CRASH,
        FaultKind.DEGRADE_STORAGE,
        FaultKind.RESTORE_STORAGE,
    }
    unsupported = [f.kind for f in faults if f.kind not in supported]
    if unsupported:
        raise ConfigError(
            f"fleet chaos supports {sorted(k.value for k in supported)}; "
            f"got {sorted({k.value for k in unsupported})}"
        )
    if not job_ids:
        raise ConfigError("fleet chaos needs at least one target job id")
    log: list[str] = []

    def fire(fault: FaultEvent, target_job: int) -> None:
        stamp = f"t={simulator.clock.now:.0f}s"
        if fault.kind is FaultKind.WORKER_CRASH:
            died = simulator.inject_worker_crash(
                target_job, max(1, int(fault.magnitude))
            )
            log.append(f"{stamp} crash {died} worker(s) of job {target_job}")
        elif fault.kind is FaultKind.DEGRADE_STORAGE:
            simulator.degrade_storage(fault.magnitude)
            log.append(f"{stamp} degrade storage to {fault.magnitude:.0%}")
        else:
            simulator.degrade_storage(1.0)
            log.append(f"{stamp} restore storage")

    for index, fault in enumerate(faults):
        target = job_ids[index % len(job_ids)]
        simulator.clock.schedule_at(
            simulator.clock.now + fault.round_index,
            lambda f=fault, j=target: fire(f, j),
        )
    return log
