"""repro: a reproduction of Meta's data storage and ingestion (DSI)
pipeline for large-scale deep recommendation model training.

Zhao et al., "Understanding Data Storage and Ingestion for Large-Scale
Deep Recommendation Model Training" (ISCA 2022).

Subpackages
-----------
``common``     simulation kernel, units, statistics, resource models
``warehouse``  Hive-like tables, schemas, feature lifecycle, generation
``dwrf``       columnar file format with feature flattening
``tectonic``   append-only distributed filesystem and media models
``datagen``    Scribe/LogDevice messaging and ETL into the warehouse
``transforms`` the Table-11 preprocessing operators and DAGs
``dpp``        the disaggregated Data PreProcessing Service
``trainer``    GPU demand, host loading tax, stall studies
``cluster``    jobs, release process, regions, scheduling, power
``workloads``  RM1/RM2/RM3 configurations and hardware specs
``analysis``   the per-table / per-figure characterization harness
``fleet``      multi-job, contention-aware datacenter orchestration
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "cluster",
    "common",
    "datagen",
    "dpp",
    "dwrf",
    "fleet",
    "tectonic",
    "trainer",
    "transforms",
    "warehouse",
    "workloads",
]
