"""Regions and datacenters: where training and datasets live.

Section 4.2: the fleet spans global regions, each with multiple
datacenters; cross-region bandwidth is highly constrained, so DSI
resources must be co-located with trainers and every region running a
model needs a copy of its dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import SchedulingError


@dataclass
class Region:
    """One global region's training and storage capacity."""

    name: str
    trainer_capacity: float  # trainer nodes available
    storage_capacity_bytes: float

    datasets: set[str] = field(default_factory=set)
    dataset_bytes: dict[str, float] = field(default_factory=dict)
    placed_demand: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.trainer_capacity <= 0 or self.storage_capacity_bytes <= 0:
            raise SchedulingError("region capacities must be positive")

    @property
    def used_storage_bytes(self) -> float:
        """Storage consumed by replicated datasets."""
        return sum(self.dataset_bytes.values())

    @property
    def placed_total(self) -> float:
        """Trainer nodes of demand placed here."""
        return sum(self.placed_demand.values())

    def host_dataset(self, model_name: str, n_bytes: float) -> None:
        """Replicate a model's dataset into this region."""
        if model_name in self.datasets:
            return
        if self.used_storage_bytes + n_bytes > self.storage_capacity_bytes:
            raise SchedulingError(
                f"region {self.name} lacks storage for {model_name}'s dataset"
            )
        self.datasets.add(model_name)
        self.dataset_bytes[model_name] = n_bytes

    def place_demand(self, model_name: str, nodes: float) -> None:
        """Assign training demand; requires the dataset to be local."""
        if model_name not in self.datasets:
            raise SchedulingError(
                f"model {model_name} has no dataset copy in region {self.name}"
            )
        if self.placed_total + nodes > self.trainer_capacity:
            raise SchedulingError(
                f"region {self.name} over capacity placing {model_name}"
            )
        self.placed_demand[model_name] = self.placed_demand.get(model_name, 0.0) + nodes
