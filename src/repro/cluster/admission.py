"""Combo-window admission control: capacity versus release latency.

Section 4.2: "Because these combo jobs are on the critical path of
model release, we must explicitly architect our datacenters with
sufficient storage, preprocessing, and training capacity to meet the
peak utilization of combo jobs."  This module quantifies the tradeoff:
when a region is provisioned below combo-peak demand, jobs queue, and
the queueing delay lands directly on the model-release critical path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..common.errors import SchedulingError
from .job import TrainingJob


@dataclass(frozen=True)
class AdmissionOutcome:
    """How one job fared under admission control."""

    job: TrainingJob
    admitted_day: float

    @property
    def queue_delay_days(self) -> float:
        """Days spent waiting for capacity."""
        return self.admitted_day - self.job.start_day


@dataclass
class AdmissionReport:
    """Fleet-level outcome of scheduling a job population."""

    outcomes: list[AdmissionOutcome]
    capacity_nodes: float

    @property
    def mean_queue_delay_days(self) -> float:
        """Average critical-path delay added by queueing."""
        if not self.outcomes:
            raise SchedulingError("no jobs were scheduled")
        return sum(o.queue_delay_days for o in self.outcomes) / len(self.outcomes)

    @property
    def p95_queue_delay_days(self) -> float:
        """Tail delay — what the slowest release candidates see."""
        delays = sorted(o.queue_delay_days for o in self.outcomes)
        return delays[int(0.95 * (len(delays) - 1))]

    @property
    def makespan_days(self) -> float:
        """Day the last job finishes."""
        return max(
            o.admitted_day + o.job.duration_days for o in self.outcomes
        )

    def utilization(self) -> float:
        """Node-days used over node-days provisioned across the makespan."""
        used = sum(o.job.node_days for o in self.outcomes)
        start = min(o.job.start_day for o in self.outcomes)
        provisioned = self.capacity_nodes * (self.makespan_days - start)
        return used / provisioned if provisioned else 0.0


def admit_jobs(jobs: list[TrainingJob], capacity_nodes: float) -> AdmissionReport:
    """FCFS admission of *jobs* into a region of *capacity_nodes*.

    Jobs are admitted in arrival order when enough nodes are free; an
    oversized job (needing more than the region) is rejected outright.
    Event-driven: releases are processed from a completion heap.
    """
    if capacity_nodes <= 0:
        raise SchedulingError("capacity must be positive")
    oversized = [job for job in jobs if job.trainer_nodes > capacity_nodes]
    if oversized:
        raise SchedulingError(
            f"{len(oversized)} job(s) exceed regional capacity "
            f"({capacity_nodes} nodes)"
        )
    free = capacity_nodes
    completions: list[tuple[float, float]] = []  # (finish_day, nodes)
    outcomes: list[AdmissionOutcome] = []
    for job in sorted(jobs, key=lambda j: j.start_day):
        now = job.start_day
        # Release capacity from jobs that finished before this arrival.
        while completions and completions[0][0] <= now:
            _, nodes = heapq.heappop(completions)
            free += nodes
        # Wait for enough releases if the job does not fit yet.
        while free < job.trainer_nodes:
            if not completions:
                raise SchedulingError("capacity accounting corrupt")
            finish, nodes = heapq.heappop(completions)
            free += nodes
            now = max(now, finish)
        free -= job.trainer_nodes
        heapq.heappush(completions, (now + job.duration_days, job.trainer_nodes))
        outcomes.append(AdmissionOutcome(job, admitted_day=now))
    return AdmissionReport(outcomes, capacity_nodes)


def capacity_for_delay(
    jobs: list[TrainingJob],
    max_mean_delay_days: float,
    low: float | None = None,
    high: float | None = None,
) -> float:
    """Smallest capacity keeping mean queue delay under the target.

    Binary search over node counts — the provisioning question of
    Section 4.2 given one combo window's job population.
    """
    if max_mean_delay_days < 0:
        raise SchedulingError("delay target cannot be negative")
    peak = max(job.trainer_nodes for job in jobs)
    low = low if low is not None else float(peak)
    high = high if high is not None else float(
        sum(job.trainer_nodes for job in jobs)
    )
    for _ in range(40):
        mid = (low + high) / 2
        report = admit_jobs(jobs, mid)
        if report.mean_queue_delay_days > max_mean_delay_days:
            low = mid
        else:
            high = mid
    return high
