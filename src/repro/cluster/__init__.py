"""Coordinated training at scale: jobs, releases, regions, power."""

from .admission import (
    AdmissionOutcome,
    AdmissionReport,
    admit_jobs,
    capacity_for_delay,
)
from .job import JobKind, JobStatus, TrainingJob
from .power import PowerBreakdown, efficiency_gain_to_trainer_watts, power_breakdown
from .region import Region
from .release import ReleaseConfig, ReleaseIteration, generate_release_iteration
from .scheduler import (
    ModelDemand,
    ScheduleOutcome,
    schedule_balanced,
    schedule_bin_packed,
)
from .utilization import ModelCadence, peak_to_median_ratio, simulate_year

__all__ = [
    "AdmissionOutcome",
    "AdmissionReport",
    "admit_jobs",
    "capacity_for_delay",
    "JobKind",
    "JobStatus",
    "ModelCadence",
    "ModelDemand",
    "PowerBreakdown",
    "Region",
    "ReleaseConfig",
    "ReleaseIteration",
    "ScheduleOutcome",
    "TrainingJob",
    "efficiency_gain_to_trainer_watts",
    "generate_release_iteration",
    "peak_to_median_ratio",
    "power_breakdown",
    "schedule_balanced",
    "schedule_bin_packed",
    "simulate_year",
]
