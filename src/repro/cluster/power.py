"""The DSI power model behind Figure 1 and Section 7.5.

For a fleet of trainer nodes running one model, total power splits into:

* **training** — the trainer nodes themselves (GPUs + host);
* **preprocessing** — the DPP worker fleet right-sized to feed them
  (Table 9's workers-per-trainer × worker node power);
* **storage** — the share of storage nodes provisioned for this model,
  where node count is driven by max(capacity, IOPS) (Section 7.1's
  throughput-to-storage gap).

Figure 1's message — DSI can consume more power than training, and the
split varies widely across models — emerges from the per-model
constants rather than being asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ConfigError
from ..dpp.analytical import per_sample_cost, worker_throughput, workers_per_trainer
from ..tectonic.cluster import ProvisioningDemand, provision
from ..tectonic.media import MediaModel, hdd_node
from ..workloads.hardware import ComputeNodeSpec, TrainerNodeSpec, C_V1, ZIONEX_TRAINER
from ..workloads.models import ModelConfig


@dataclass(frozen=True)
class PowerBreakdown:
    """Watts by pipeline stage for one model's training fleet."""

    model: ModelConfig
    storage_watts: float
    preprocessing_watts: float
    training_watts: float

    @property
    def total_watts(self) -> float:
        """Fleet power across all three stages."""
        return self.storage_watts + self.preprocessing_watts + self.training_watts

    def shares(self) -> dict[str, float]:
        """Fractional split (the Figure 1 bars)."""
        total = self.total_watts
        return {
            "storage": self.storage_watts / total,
            "preprocessing": self.preprocessing_watts / total,
            "training": self.training_watts / total,
        }

    @property
    def dsi_share(self) -> float:
        """Fraction of power spent outside the trainers."""
        return 1.0 - self.training_watts / self.total_watts


def power_breakdown(
    model: ModelConfig,
    n_trainers: int = 16,
    trainer: TrainerNodeSpec = ZIONEX_TRAINER,
    worker_node: ComputeNodeSpec = C_V1,
    storage_media: MediaModel | None = None,
    io_sizes: list[float] | None = None,
) -> PowerBreakdown:
    """Compute the Figure 1 split for *n_trainers* nodes of one model."""
    if n_trainers <= 0:
        raise ConfigError("need at least one trainer")
    media = storage_media or hdd_node()
    # Representative physical I/O sizes after coalescing: ~1.25 MiB
    # unless the caller provides a measured distribution (Table 6).
    sizes = io_sizes or [1.25 * (1 << 20)]

    training_watts = n_trainers * trainer.total_watts

    n_workers = workers_per_trainer(model, worker_node) * n_trainers
    preprocessing_watts = n_workers * worker_node.watts

    # Storage demand: the workers' aggregate compressed read rate.
    throughput = worker_throughput(model, worker_node)
    read_rate = n_workers * throughput.qps * per_sample_cost(model).storage_rx_bytes
    plan = provision(
        ProvisioningDemand(
            dataset_bytes=model.table_sizes.used_partitions,
            read_bytes_per_s=read_rate,
            io_sizes=sizes,
        ),
        media,
    )
    # Attribute storage power by this job's share of the provisioned
    # nodes' IOPS rather than the whole fleet (datasets are shared
    # across jobs; power follows usage).
    storage_watts = plan.nodes_for_iops * media.watts

    return PowerBreakdown(
        model=model,
        storage_watts=storage_watts,
        preprocessing_watts=preprocessing_watts,
        training_watts=training_watts,
    )


def efficiency_gain_to_trainer_watts(
    before: PowerBreakdown, dsi_power_reduction: float
) -> float:
    """Trainer nodes' worth of power freed by a DSI efficiency gain.

    Section 7.5: a 2.59× reduction in DSI power requirements lets the
    datacenter host more trainers at fixed power.  Returns the freed
    watts.
    """
    if dsi_power_reduction <= 1:
        raise ConfigError("reduction factor must exceed 1")
    dsi_watts = before.storage_watts + before.preprocessing_watts
    return dsi_watts * (1.0 - 1.0 / dsi_power_reduction)
