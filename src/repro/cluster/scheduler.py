"""Global training-job scheduling across regions.

Two policies bracket Section 4.2's observation and Section 7.3's
opportunity:

* :func:`schedule_balanced` — today's behaviour: "our global scheduler
  currently balances training jobs for each model across regions,
  requiring each region to contain a copy of all models' datasets."
* :func:`schedule_bin_packed` — the proposed optimization: concentrate
  each model in as few regions as its peak demand allows, reducing
  dataset replication, "with care to ensure data availability for each
  model as its peak compute demand can exceed regional capacity."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import SchedulingError
from .region import Region


@dataclass(frozen=True)
class ModelDemand:
    """One model's global needs."""

    model_name: str
    peak_trainer_nodes: float
    dataset_bytes: float


@dataclass
class ScheduleOutcome:
    """Result of one scheduling policy run."""

    placements: dict[str, dict[str, float]]  # model -> region -> nodes
    total_dataset_copies: int
    total_storage_bytes: float

    def demand_matrix(self, models: list[str], regions: list[str]) -> list[list[float]]:
        """Figure 6's matrix: rows = models, columns = regions."""
        return [
            [self.placements.get(model, {}).get(region, 0.0) for region in regions]
            for model in models
        ]


def schedule_balanced(
    demands: list[ModelDemand], regions: list[Region]
) -> ScheduleOutcome:
    """Spread every model evenly over all regions (today's policy)."""
    if not regions:
        raise SchedulingError("no regions to schedule into")
    placements: dict[str, dict[str, float]] = {}
    for demand in demands:
        share = demand.peak_trainer_nodes / len(regions)
        placements[demand.model_name] = {}
        for region in regions:
            region.host_dataset(demand.model_name, demand.dataset_bytes)
            region.place_demand(demand.model_name, share)
            placements[demand.model_name][region.name] = share
    return _outcome(placements, regions)


def schedule_bin_packed(
    demands: list[ModelDemand], regions: list[Region]
) -> ScheduleOutcome:
    """Concentrate each model into the fewest regions that fit it.

    Models are placed largest-first; each takes the least-loaded
    regions until its demand is covered, replicating its dataset only
    where it runs.
    """
    if not regions:
        raise SchedulingError("no regions to schedule into")
    placements: dict[str, dict[str, float]] = {}
    for demand in sorted(demands, key=lambda d: d.peak_trainer_nodes, reverse=True):
        remaining = demand.peak_trainer_nodes
        placements[demand.model_name] = {}
        # Greedy: fill regions with the most free trainer capacity.
        for region in sorted(
            regions, key=lambda r: r.trainer_capacity - r.placed_total, reverse=True
        ):
            free = region.trainer_capacity - region.placed_total
            if free <= 0:
                continue
            take = min(free, remaining)
            region.host_dataset(demand.model_name, demand.dataset_bytes)
            region.place_demand(demand.model_name, take)
            placements[demand.model_name][region.name] = take
            remaining -= take
            if remaining <= 1e-9:
                break
        if remaining > 1e-9:
            raise SchedulingError(
                f"insufficient global capacity for {demand.model_name}: "
                f"{remaining:.1f} nodes unplaced"
            )
    return _outcome(placements, regions)


def _outcome(
    placements: dict[str, dict[str, float]], regions: list[Region]
) -> ScheduleOutcome:
    copies = sum(len(region.datasets) for region in regions)
    storage = sum(region.used_storage_bytes for region in regions)
    return ScheduleOutcome(placements, copies, storage)
