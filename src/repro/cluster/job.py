"""Training jobs: the unit of the collaborative release process.

Section 4.1: models are developed through three job kinds —
*exploratory* (hundreds to thousands, small, <5% of the table), *combo*
(tens to hundreds, large, trained within a short window), and *release
candidates* (few, large, fresh data).  Many jobs are killed or fail
when their performance is lackluster.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from ..common.errors import ConfigError

_job_ids = itertools.count()


class JobKind(enum.Enum):
    """Phase of the release process a job belongs to."""

    EXPLORATORY = "exploratory"
    COMBO = "combo"
    RELEASE_CANDIDATE = "release_candidate"


class JobStatus(enum.Enum):
    """Terminal status of a training job (Figure 4's categories)."""

    COMPLETED = "completed"
    KILLED = "killed"  # engineer abandoned a lackluster idea
    FAILED = "failed"  # infrastructure or convergence failure
    RUNNING = "running"


@dataclass
class TrainingJob:
    """One training job with its resource footprint over time."""

    model_name: str
    kind: JobKind
    start_day: float
    duration_days: float
    trainer_nodes: int
    table_fraction: float  # share of the model's table the job reads
    status: JobStatus = JobStatus.RUNNING
    job_id: int = -1

    def __post_init__(self) -> None:
        if self.job_id < 0:
            self.job_id = next(_job_ids)
        if self.duration_days <= 0:
            raise ConfigError("job duration must be positive")
        if self.trainer_nodes <= 0:
            raise ConfigError("job needs at least one trainer node")
        if not 0 < self.table_fraction <= 1:
            raise ConfigError("table fraction must be in (0, 1]")

    @property
    def end_day(self) -> float:
        """Day the job finishes (or was killed)."""
        return self.start_day + self.duration_days

    def active_on(self, day: float) -> bool:
        """Whether the job occupies trainers on the given day."""
        return self.start_day <= day < self.end_day

    @property
    def node_days(self) -> float:
        """Total compute footprint (trainer-node × days)."""
        return self.trainer_nodes * self.duration_days
