"""Fleet utilization traces: Figure 5's year of collaborative training.

Runs the release-process generator on a per-model cadence over a year
and accumulates daily trainer-node demand.  The resulting trace shows
the paper's signature shape: distinct peaks where multiple models'
combo windows overlap, against a floor of exploratory work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import ConfigError
from .job import TrainingJob
from .release import ReleaseConfig, generate_release_iteration


@dataclass(frozen=True)
class ModelCadence:
    """One model's release rhythm over the simulated year."""

    model_name: str
    iteration_period_days: float = 42.0
    phase_days: float = 0.0  # offset of the first iteration
    config: ReleaseConfig | None = None


def simulate_year(
    cadences: list[ModelCadence], days: int = 365, seed: int = 0
) -> tuple[np.ndarray, list[TrainingJob]]:
    """Generate a year of jobs and the daily demand trace.

    Returns ``(daily_nodes, jobs)`` where ``daily_nodes[d]`` is total
    trainer nodes active on day *d* across all models.
    """
    if not cadences:
        raise ConfigError("need at least one model cadence")
    jobs: list[TrainingJob] = []
    for index, cadence in enumerate(cadences):
        start = cadence.phase_days
        iteration = 0
        while start < days:
            jobs.extend(
                generate_release_iteration(
                    cadence.model_name,
                    start,
                    cadence.config,
                    seed=seed * 10_007 + index * 101 + iteration,
                ).jobs
            )
            start += cadence.iteration_period_days
            iteration += 1

    daily = np.zeros(days)
    for job in jobs:
        lo = max(0, int(np.floor(job.start_day)))
        hi = min(days, int(np.ceil(job.end_day)))
        if hi > lo:
            daily[lo:hi] += job.trainer_nodes
    return daily, jobs


def peak_to_median_ratio(daily_nodes: np.ndarray) -> float:
    """Figure 5's peakiness statistic: max demand over median demand."""
    median = float(np.median(daily_nodes))
    if median == 0:
        raise ConfigError("utilization trace has zero median demand")
    return float(daily_nodes.max()) / median
