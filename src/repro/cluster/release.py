"""The collaborative release process generator.

Generates one model-release iteration's job population with the shapes
Section 4.1 describes: a horde of small exploratory jobs, a burst of
large combo jobs launched asynchronously inside a short window with
heavily skewed durations and many kills (Figure 4), and a few release
candidates on fresh data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import ConfigError
from .job import JobKind, JobStatus, TrainingJob


@dataclass(frozen=True)
class ReleaseConfig:
    """Shape parameters of one release iteration.

    Defaults follow the paper's RM1 narrative: ~82 combo jobs per
    iteration (Figure 4), individual jobs running up to >10 days, and a
    substantial kill/failure rate.
    """

    n_exploratory: int = 400
    n_combo: int = 82
    n_release_candidates: int = 4
    combo_window_days: float = 14.0
    combo_duration_median_days: float = 4.0
    combo_duration_sigma: float = 0.9  # lognormal shape: long right tail
    combo_trainer_nodes: int = 16
    exploratory_trainer_nodes: int = 2
    rc_trainer_nodes: int = 24
    kill_rate: float = 0.30
    failure_rate: float = 0.10

    def __post_init__(self) -> None:
        if self.kill_rate + self.failure_rate >= 1:
            raise ConfigError("kill + failure rates must leave completed jobs")
        if self.combo_window_days <= 0:
            raise ConfigError("combo window must be positive")


@dataclass
class ReleaseIteration:
    """All jobs of one release iteration."""

    model_name: str
    start_day: float
    jobs: list[TrainingJob]

    def jobs_of_kind(self, kind: JobKind) -> list[TrainingJob]:
        """Jobs in one phase."""
        return [job for job in self.jobs if job.kind is kind]

    def combo_duration_skew(self) -> float:
        """p95/p50 of combo durations — the Figure 4 skew statistic."""
        durations = sorted(
            job.duration_days for job in self.jobs_of_kind(JobKind.COMBO)
        )
        mid = durations[len(durations) // 2]
        p95 = durations[int(len(durations) * 0.95)]
        return p95 / mid


def generate_release_iteration(
    model_name: str,
    start_day: float,
    config: ReleaseConfig | None = None,
    seed: int = 0,
) -> ReleaseIteration:
    """Draw one iteration's jobs from the release-process model."""
    config = config or ReleaseConfig()
    rng = np.random.default_rng(seed)
    jobs: list[TrainingJob] = []

    # Phase 1: exploratory jobs trickle in ahead of the combo window.
    for _ in range(config.n_exploratory):
        jobs.append(
            TrainingJob(
                model_name=model_name,
                kind=JobKind.EXPLORATORY,
                start_day=start_day + float(rng.uniform(0, config.combo_window_days)),
                duration_days=float(rng.lognormal(np.log(0.8), 0.6)),
                trainer_nodes=config.exploratory_trainer_nodes,
                table_fraction=float(rng.uniform(0.005, 0.05)),
                status=_draw_status(rng, config),
            )
        )

    # Phase 2: combo jobs. "Instead of waiting to launch jobs
    # synchronously, engineers will immediately schedule new jobs ...
    # resulting in a large temporal skew between jobs."
    combo_start = start_day + config.combo_window_days
    for _ in range(config.n_combo):
        duration = float(
            rng.lognormal(np.log(config.combo_duration_median_days), config.combo_duration_sigma)
        )
        jobs.append(
            TrainingJob(
                model_name=model_name,
                kind=JobKind.COMBO,
                start_day=combo_start + float(rng.uniform(0, config.combo_window_days)),
                duration_days=duration,
                trainer_nodes=config.combo_trainer_nodes,
                table_fraction=float(rng.uniform(0.7, 1.0)),
                status=_draw_status(rng, config),
            )
        )

    # Phase 3: a few release candidates on fresh data.
    rc_start = combo_start + config.combo_window_days
    for _ in range(config.n_release_candidates):
        jobs.append(
            TrainingJob(
                model_name=model_name,
                kind=JobKind.RELEASE_CANDIDATE,
                start_day=rc_start + float(rng.uniform(0, 3.0)),
                duration_days=float(rng.lognormal(np.log(6.0), 0.4)),
                trainer_nodes=config.rc_trainer_nodes,
                table_fraction=float(rng.uniform(0.85, 1.0)),
                status=JobStatus.COMPLETED,
            )
        )
    return ReleaseIteration(model_name, start_day, jobs)


def _draw_status(rng: np.random.Generator, config: ReleaseConfig) -> JobStatus:
    draw = rng.random()
    if draw < config.kill_rate:
        return JobStatus.KILLED
    if draw < config.kill_rate + config.failure_rate:
        return JobStatus.FAILED
    return JobStatus.COMPLETED
