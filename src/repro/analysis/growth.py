"""Figure 2: dataset-size and ingestion-bandwidth growth over two years.

The paper reports >2× dataset growth and >4× ingestion-bandwidth growth
over two years, driven by "organic user growth, reduced downsampling,
and an increase in engineered features".  We model each driver as
monthly compounding with seeded noise and report normalized series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import ConfigError


@dataclass(frozen=True)
class GrowthDrivers:
    """Monthly growth rates of the three dataset-size drivers."""

    user_growth: float = 0.012  # organic sample volume
    downsampling_relief: float = 0.010  # keeping more of the firehose
    feature_growth: float = 0.014  # new engineered features per sample
    # Bandwidth additionally grows with trainer throughput demand.
    trainer_demand_growth: float = 0.028

    def monthly_dataset_rate(self) -> float:
        """Combined monthly dataset growth factor."""
        return (
            (1 + self.user_growth)
            * (1 + self.downsampling_relief)
            * (1 + self.feature_growth)
        )

    def monthly_bandwidth_rate(self) -> float:
        """Combined monthly ingestion-bandwidth growth factor.

        Bandwidth scales with dataset richness *and* trainer demand:
        faster DSAs re-read the growing data at higher rates.
        """
        return self.monthly_dataset_rate() * (1 + self.trainer_demand_growth)


@dataclass(frozen=True)
class GrowthSeries:
    """Normalized monthly series (first month = 1.0)."""

    dataset_size: np.ndarray
    ingestion_bandwidth: np.ndarray

    @property
    def dataset_growth(self) -> float:
        """End-over-start dataset growth (paper: >2× over 2 years)."""
        return float(self.dataset_size[-1] / self.dataset_size[0])

    @property
    def bandwidth_growth(self) -> float:
        """End-over-start bandwidth growth (paper: >4× over 2 years)."""
        return float(self.ingestion_bandwidth[-1] / self.ingestion_bandwidth[0])


def simulate_growth(
    months: int = 24,
    drivers: GrowthDrivers | None = None,
    noise_sigma: float = 0.02,
    seed: int = 0,
) -> GrowthSeries:
    """Generate the Figure 2 series with multiplicative noise."""
    if months < 2:
        raise ConfigError("need at least two months")
    drivers = drivers or GrowthDrivers()
    rng = np.random.default_rng(seed)
    dataset = np.empty(months)
    bandwidth = np.empty(months)
    dataset[0] = 1.0
    bandwidth[0] = 1.0
    for month in range(1, months):
        dataset[month] = (
            dataset[month - 1]
            * drivers.monthly_dataset_rate()
            * float(np.exp(rng.normal(0, noise_sigma)))
        )
        bandwidth[month] = (
            bandwidth[month - 1]
            * drivers.monthly_bandwidth_rate()
            * float(np.exp(rng.normal(0, noise_sigma)))
        )
    return GrowthSeries(dataset, bandwidth)
