"""Plain-text table rendering for benchmark and example output."""

from __future__ import annotations

from typing import Any, Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None
) -> str:
    """Render rows as an aligned monospace table.

    Floats print with three significant decimals; everything else with
    ``str``.  Used by benches to print paper-style tables.
    """
    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
