"""Tables 8 & 9 and Figures 8 & 9: throughput and utilization rows.

Thin assembly over the analytical models — each function returns the
rows/series the paper prints, so benchmarks and EXPERIMENTS.md render
from one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.units import GB
from ..dpp.analytical import (
    per_sample_cost,
    worker_throughput,
    workers_per_trainer,
)
from ..trainer.host import LoadingTax, loading_utilization
from ..workloads.hardware import ComputeNodeSpec, TrainerNodeSpec, C_V1, V100_TRAINER
from ..workloads.models import ALL_MODELS, ModelConfig


@dataclass(frozen=True)
class Table8Row:
    """Per-node GPU ingest throughput for one model."""

    model_name: str
    trainer_gbs: float


def table8_rows(models: tuple[ModelConfig, ...] = ALL_MODELS) -> list[Table8Row]:
    """Table 8: GB/s per 8-GPU node across models."""
    return [Table8Row(m.name, m.trainer_gbs) for m in models]


@dataclass(frozen=True)
class Table9Row:
    """Per-worker throughput and fleet sizing for one model."""

    model_name: str
    kqps: float
    storage_rx_gbs: float
    transform_rx_gbs: float
    transform_tx_gbs: float
    workers_per_trainer: float
    bottleneck: str


def table9_rows(
    models: tuple[ModelConfig, ...] = ALL_MODELS,
    node: ComputeNodeSpec = C_V1,
) -> list[Table9Row]:
    """Table 9 computed from the analytical worker model."""
    rows = []
    for model in models:
        throughput = worker_throughput(model, node)
        cost = per_sample_cost(model)
        qps = throughput.qps
        rows.append(
            Table9Row(
                model_name=model.name,
                kqps=qps / 1_000,
                storage_rx_gbs=qps * cost.storage_rx_bytes / GB,
                transform_rx_gbs=qps * cost.uncompressed_bytes / GB,
                transform_tx_gbs=qps * cost.tensor_tx_bytes / GB,
                workers_per_trainer=workers_per_trainer(model, node),
                bottleneck=throughput.bottleneck,
            )
        )
    return rows


@dataclass(frozen=True)
class Figure8Point:
    """One point of the loading sweep."""

    rate_gbs: float
    cpu: float
    mem_bw: float
    nic_rx: float


def figure8_sweep(
    node: TrainerNodeSpec = V100_TRAINER,
    max_gbs: float = 20.0,
    n_points: int = 21,
    tax: LoadingTax | None = None,
) -> list[Figure8Point]:
    """Figure 8: host utilization versus tensor loading rate."""
    points = []
    for i in range(n_points):
        rate = max_gbs * i / (n_points - 1)
        report = loading_utilization(node, rate * GB, tax)
        points.append(
            Figure8Point(rate_gbs=rate, cpu=report.cpu, mem_bw=report.mem_bw,
                         nic_rx=report.nic_rx)
        )
    return points


@dataclass(frozen=True)
class Figure9Row:
    """Per-model DPP worker utilization at saturation."""

    model_name: str
    cpu_transformation: float
    cpu_extraction: float
    cpu_misc: float
    mem_capacity: float
    mem_bw: float
    bottleneck: str


def figure9_rows(
    models: tuple[ModelConfig, ...] = ALL_MODELS,
    node: ComputeNodeSpec = C_V1,
) -> list[Figure9Row]:
    """Figure 9: utilization breakdown at each model's saturation QPS."""
    rows = []
    for model in models:
        throughput = worker_throughput(model, node)
        qps = throughput.qps
        cpu = throughput.cpu_breakdown_at_qps(qps)
        util = throughput.utilization_at_qps(qps)
        # Memory capacity utilization: thread working sets over DRAM.
        threads = min(
            node.physical_cores * 3.0,
            node.memory_gb * 1e9 * 0.625 / (model.working_set_mb_per_thread * 1e6),
        )
        mem_capacity = (
            threads * model.working_set_mb_per_thread * 1e6 / (node.memory_gb * 1e9)
        )
        rows.append(
            Figure9Row(
                model_name=model.name,
                cpu_transformation=cpu["transformation"],
                cpu_extraction=cpu["extraction"],
                cpu_misc=cpu["misc"],
                mem_capacity=mem_capacity,
                mem_bw=util["mem_bw"],
                bottleneck=throughput.bottleneck,
            )
        )
    return rows
