"""Characterization harness: one module per paper table/figure."""

from .ablation import (
    AblationResult,
    AblationStage,
    StageResult,
    popularity_feature_order,
    run_ablation,
    run_stage,
    stages,
)
from .feature_stats import (
    RM1_LIFECYCLE_RATES,
    LifecycleCounts,
    ReadSelectivity,
    measure_read_selectivity,
    simulate_feature_lifecycle,
)
from .growth import GrowthDrivers, GrowthSeries, simulate_growth
from .io_sizes import IoSizeStudy, measure_io_sizes
from .popularity import PopularityStudy, byte_popularity_curve, simulate_month_of_jobs
from .report import render_table
from .whatif import (
    GrowthImpact,
    HostHeadroom,
    project_demand_growth,
    trainer_host_headroom,
)
from .throughput import (
    Figure8Point,
    Figure9Row,
    Table8Row,
    Table9Row,
    figure8_sweep,
    figure9_rows,
    table8_rows,
    table9_rows,
)

__all__ = [
    "GrowthImpact",
    "HostHeadroom",
    "project_demand_growth",
    "trainer_host_headroom",
    "AblationResult",
    "AblationStage",
    "Figure8Point",
    "Figure9Row",
    "GrowthDrivers",
    "GrowthSeries",
    "IoSizeStudy",
    "LifecycleCounts",
    "PopularityStudy",
    "RM1_LIFECYCLE_RATES",
    "ReadSelectivity",
    "StageResult",
    "Table8Row",
    "Table9Row",
    "byte_popularity_curve",
    "figure8_sweep",
    "figure9_rows",
    "measure_io_sizes",
    "measure_read_selectivity",
    "popularity_feature_order",
    "render_table",
    "run_ablation",
    "run_stage",
    "simulate_feature_lifecycle",
    "simulate_growth",
    "simulate_month_of_jobs",
    "stages",
    "table8_rows",
    "table9_rows",
]
