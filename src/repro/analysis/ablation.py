"""Table 12: the progressive optimization ablation, run for real.

Seven configurations retrace the paper's co-design journey —
Baseline → +FF → +FM → +LO → +CR → +FR → +LS — on the executable
pipeline.  Every stage changes an actual code path or layout knob:

* **FF** switches the file layout from MAP to FLATTENED;
* **FM** switches workers to the direct columnar decode path;
* **LO** removes the build/runtime overhead factor;
* **CR** enables 1.25 MiB coalesced reads;
* **FR** writes feature streams in popularity order;
* **LS** raises stripe rows ~4×.

DPP throughput is rows per CPU-cycle (the worker fleet is compute
bound); storage throughput is useful bytes per second of disk time
under the HDD service model, both normalized to the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dwrf.layout import EncodingOptions, FileLayout
from ..dwrf.reader import IOTrace
from ..dwrf.writer import DwrfFile
from ..tectonic.filesystem import TectonicFilesystem
from ..tectonic.media import COALESCE_WINDOW_BYTES, MediaModel, hdd_node
from ..warehouse.publish import encode_table, store_files
from ..workloads.datasets import MiniDataset
from ..dpp.service import DppSession
from ..dpp.spec import SessionSpec
from ..dpp.worker import WorkerConfig


@dataclass(frozen=True)
class AblationStage:
    """One column of Table 12."""

    name: str
    layout: FileLayout
    in_memory_flatmap: bool
    localized_optimizations: bool
    coalesce_window: int
    popularity_order: bool
    stripe_rows: int


def stages(base_stripe_rows: int = 512, large_stripe_rows: int = 2048) -> list[AblationStage]:
    """The paper's cumulative optimization sequence."""
    return [
        AblationStage("Baseline", FileLayout.MAP, False, False, 0, False, base_stripe_rows),
        AblationStage("+FF", FileLayout.FLATTENED, False, False, 0, False, base_stripe_rows),
        AblationStage("+FM", FileLayout.FLATTENED, True, False, 0, False, base_stripe_rows),
        AblationStage("+LO", FileLayout.FLATTENED, True, True, 0, False, base_stripe_rows),
        AblationStage("+CR", FileLayout.FLATTENED, True, True, COALESCE_WINDOW_BYTES, False, base_stripe_rows),
        AblationStage("+FR", FileLayout.FLATTENED, True, True, COALESCE_WINDOW_BYTES, True, base_stripe_rows),
        AblationStage("+LS", FileLayout.FLATTENED, True, True, COALESCE_WINDOW_BYTES, True, large_stripe_rows),
    ]


@dataclass(frozen=True)
class StageResult:
    """Measured outcome of one ablation stage."""

    stage: AblationStage
    rows: int
    cpu_cycles: float
    useful_bytes: int
    disk_time_s: float
    io_count: int
    seeks: int
    overread_fraction: float

    @property
    def dpp_throughput(self) -> float:
        """Rows per cycle — the worker-side throughput proxy."""
        return self.rows / self.cpu_cycles

    @property
    def storage_throughput(self) -> float:
        """Useful bytes per second of storage-node time."""
        return self.useful_bytes / self.disk_time_s


@dataclass(frozen=True)
class AblationResult:
    """The full Table 12, normalized to the baseline stage."""

    results: list[StageResult]

    def normalized_dpp(self) -> dict[str, float]:
        """DPP throughput relative to the baseline (Table 12 row 1)."""
        base = self.results[0].dpp_throughput
        return {r.stage.name: r.dpp_throughput / base for r in self.results}

    def normalized_storage(self) -> dict[str, float]:
        """Storage throughput relative to the baseline (Table 12 row 2)."""
        base = self.results[0].storage_throughput
        return {r.stage.name: r.storage_throughput / base for r in self.results}


def popularity_feature_order(dataset: MiniDataset) -> tuple[int, ...]:
    """Feature order for FR: projected (popular) features first.

    Within each group, order by coverage descending — the paper orders
    "based on features' popularity in training jobs launched within a
    recent window".
    """
    projected = sorted(
        dataset.projection,
        key=lambda fid: dataset.schema.get(fid).coverage,
        reverse=True,
    )
    rest = [fid for fid in dataset.schema.feature_ids() if fid not in dataset.projection]
    return tuple(projected) + tuple(rest)


def projection_byte_fraction(dataset: MiniDataset, stripe_rows: int = 512) -> float:
    """Fraction of stored feature bytes the job's projection needs.

    Used to credit MAP-layout stages with *useful* bytes: the map
    layout physically reads whole rows, but only this fraction serves
    the training job (the "over read" of Section 7.5).
    """
    from .feature_stats import measure_read_selectivity

    return measure_read_selectivity(dataset, stripe_rows).pct_bytes_used / 100.0


def stage_encoding_options(
    dataset: MiniDataset, stage: AblationStage
) -> EncodingOptions:
    """The layout knobs one ablation stage publishes under."""
    return EncodingOptions(
        layout=stage.layout,
        stripe_rows=stage.stripe_rows,
        feature_order=popularity_feature_order(dataset) if stage.popularity_order else None,
    )


def run_stage(
    dataset: MiniDataset,
    stage: AblationStage,
    media: MediaModel | None = None,
    n_workers: int = 2,
    map_useful_fraction: float | None = None,
    encoded_files: dict[str, DwrfFile] | None = None,
) -> StageResult:
    """Publish the dataset under the stage's layout and run a session.

    *encoded_files* short-circuits the (deterministic) DWRF encode —
    consecutive stages that share layout knobs reuse one encoding.
    """
    media = media or hdd_node()
    filesystem = TectonicFilesystem(n_nodes=6)
    if encoded_files is None:
        encoded_files = encode_table(
            dataset.table, stage_encoding_options(dataset, stage)
        )
    footers = store_files(filesystem, dataset.table.name, encoded_files)
    spec = SessionSpec(
        table_name=dataset.table.name,
        partitions=tuple(dataset.table.partition_names()),
        projection=dataset.projection,
        dag=dataset.dag,
        output_ids=dataset.output_ids,
        batch_size=256,
        coalesce_window=stage.coalesce_window,
    )
    session = DppSession(
        spec,
        filesystem,
        dataset.schema,
        footers,
        n_workers=n_workers,
        worker_config=WorkerConfig(
            in_memory_flatmap=stage.in_memory_flatmap,
            localized_optimizations=stage.localized_optimizations,
        ),
    )
    session.pump()

    trace = IOTrace()
    for worker in session.workers:
        trace.records.extend(worker.io_trace.records)
    cycles = sum(worker.stats.usage.cpu_cycles for worker in session.workers)
    rows = sum(worker.stats.rows_processed for worker in session.workers)
    disk_time = media.trace_time(trace.io_sizes(), trace.seek_count())
    useful = trace.useful_bytes
    if stage.layout is FileLayout.MAP:
        # MAP streams are all "needed" by the reader, but only the
        # projection fraction serves the job.
        fraction = (
            map_useful_fraction
            if map_useful_fraction is not None
            else projection_byte_fraction(dataset)
        )
        useful = int(trace.bytes_read * fraction)
    return StageResult(
        stage=stage,
        rows=rows,
        cpu_cycles=cycles,
        useful_bytes=useful,
        disk_time_s=disk_time,
        io_count=trace.io_count,
        seeks=trace.seek_count(),
        overread_fraction=trace.overread_fraction,
    )


def run_ablation(
    dataset: MiniDataset,
    media: MediaModel | None = None,
    base_stripe_rows: int = 2000,
    large_stripe_rows: int = 8000,
) -> AblationResult:
    """Run every Table 12 stage and collect normalized throughputs.

    Stripe sizes default large enough that the miniature reproduces the
    production regime: per-stripe over-read bytes cost more disk time
    than a seek, which is the regime where feature reordering and large
    stripes pay off (Section 7.5).
    """
    fraction = projection_byte_fraction(dataset)
    # EncodingOptions is frozen/hashable, so the options object itself
    # keys the cache — every knob that shapes the bytes participates.
    encoded_cache: dict[EncodingOptions, dict[str, DwrfFile]] = {}
    results = []
    for stage in stages(base_stripe_rows, large_stripe_rows):
        options = stage_encoding_options(dataset, stage)
        if options not in encoded_cache:
            encoded_cache[options] = encode_table(dataset.table, options)
        results.append(
            run_stage(
                dataset,
                stage,
                media,
                map_useful_fraction=fraction,
                encoded_files=encoded_cache[options],
            )
        )
    return AblationResult(results)
