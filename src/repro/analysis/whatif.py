"""What-if studies: the paper's forward-looking projections.

Section 6.1 projects online-preprocessing demand to grow 3.5× within
two years; Section 6.3 asks which resources bind as compute nodes
evolve; Section 7.1 asks what trainer hosts must provision.  These
functions answer: under grown demand, what does each model need per
trainer, which node generations can feed it, and where do trainer
hosts themselves give out.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dpp.analytical import per_sample_cost, worker_throughput
from ..trainer.gpu import PROJECTED_GROWTH_FACTOR, GpuDemand
from ..trainer.host import LoadingTax, max_loading_rate
from ..workloads.hardware import ComputeNodeSpec, TrainerNodeSpec
from ..workloads.models import ModelConfig


@dataclass(frozen=True)
class GrowthImpact:
    """One (model, node generation) cell of the projection study."""

    model: ModelConfig
    node: ComputeNodeSpec
    growth: float
    workers_per_trainer_now: float
    workers_per_trainer_grown: float
    bottleneck: str

    @property
    def extra_workers(self) -> float:
        """Additional workers per trainer the growth demands."""
        return self.workers_per_trainer_grown - self.workers_per_trainer_now


def project_demand_growth(
    model: ModelConfig,
    node: ComputeNodeSpec,
    growth: float = PROJECTED_GROWTH_FACTOR,
) -> GrowthImpact:
    """Fleet impact of the Section 6.1 demand projection.

    Worker throughput is unchanged (same node, same model); the trainer
    pulls *growth*× more bytes, so the fleet scales linearly — unless
    the host itself saturates first (see :func:`trainer_host_headroom`).
    """
    throughput = worker_throughput(model, node)
    cost = per_sample_cost(model)
    demand_now = model.trainer_bytes_per_s / cost.tensor_tx_bytes
    workers_now = demand_now / throughput.qps
    return GrowthImpact(
        model=model,
        node=node,
        growth=growth,
        workers_per_trainer_now=workers_now,
        workers_per_trainer_grown=workers_now * growth,
        bottleneck=throughput.bottleneck,
    )


@dataclass(frozen=True)
class HostHeadroom:
    """Whether a trainer host can load a model's (grown) demand."""

    model: ModelConfig
    trainer: TrainerNodeSpec
    demand_bytes_per_s: float
    max_rate_bytes_per_s: float

    @property
    def feasible(self) -> bool:
        """True when the host can sustain the loading rate."""
        return self.demand_bytes_per_s <= self.max_rate_bytes_per_s

    @property
    def utilization(self) -> float:
        """Demand as a fraction of the host's loading ceiling."""
        return self.demand_bytes_per_s / self.max_rate_bytes_per_s


def trainer_host_headroom(
    model: ModelConfig,
    trainer: TrainerNodeSpec,
    growth: float = 1.0,
    tax: LoadingTax | None = None,
) -> HostHeadroom:
    """Can *trainer*'s host resources load *model* at *growth*× demand?

    This is the Section 7.1 question that drove ZionEX's four frontend
    NICs: provision enough host compute/memory/NIC for data loading.
    """
    demand = GpuDemand(model, growth).bytes_per_s
    return HostHeadroom(
        model=model,
        trainer=trainer,
        demand_bytes_per_s=demand,
        max_rate_bytes_per_s=max_loading_rate(trainer, tax),
    )
