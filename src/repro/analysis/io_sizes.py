"""Table 6: the I/O size distribution of a filtering training job.

Heavy column filtering over flattened DWRF files produces small,
scattered reads ("relatively-small contiguous regions for read
features", Section 5.1).  This study writes a miniature RM-shaped table,
reads it with a representative projection and *no* coalescing (Table 6
predates the coalesced-read optimization), and summarizes the physical
I/O sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.stats import DistributionSummary
from ..dwrf.layout import EncodingOptions
from ..dwrf.reader import DwrfReader, IOTrace, ReadOptions
from ..tectonic.filesystem import TectonicFilesystem
from ..warehouse.publish import partition_file_name, publish_table
from ..workloads.datasets import MiniDataset


@dataclass(frozen=True)
class IoSizeStudy:
    """Measured I/O size distribution plus its trace."""

    summary: DistributionSummary
    trace: IOTrace

    @property
    def skew(self) -> float:
        """Mean / median — Table 6 shows a heavy right skew (≈19×)."""
        return self.summary.mean / self.summary.p50


def measure_io_sizes(
    dataset: MiniDataset,
    stripe_rows: int = 2048,
    coalesce_window: int = 0,
) -> IoSizeStudy:
    """Publish the dataset and trace a projection read over it."""
    filesystem = TectonicFilesystem(n_nodes=6)
    footers = publish_table(
        filesystem, dataset.table, EncodingOptions(stripe_rows=stripe_rows)
    )
    trace = IOTrace()
    for partition, footer in footers.items():
        path = partition_file_name(dataset.table.name, partition)
        reader = DwrfReader(
            footer,
            filesystem.fetcher(path),
            ReadOptions(projection=dataset.projection, coalesce_window=coalesce_window),
            trace=trace,
        )
        for index in range(len(footer.stripes)):
            reader.read_stripe(index, dataset.schema)
    return IoSizeStudy(summary=trace.size_summary(), trace=trace)
