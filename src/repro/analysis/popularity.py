"""Figure 7: bytes-vs-traffic popularity across a month of training runs.

Training jobs for one model "largely build upon a common baseline", so
they collectively reuse a core feature set while individually varying
at the margin (Section 5.2).  We simulate a month of jobs per model —
each reading the core projection plus a per-job experimental tail — and
compute the CDF of stored bytes against the read traffic they absorb.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import ConfigError
from ..common.stats import CdfPoint
from ..workloads.models import ModelConfig


@dataclass(frozen=True)
class PopularityStudy:
    """The Figure 7 curve for one model."""

    model: ModelConfig
    curve: list[CdfPoint]  # x: most-popular byte fraction, y: traffic absorbed

    def bytes_fraction_for_traffic(self, traffic: float) -> float:
        """Smallest byte fraction absorbing ≥ *traffic* of reads."""
        for point in self.curve:
            if point.y >= traffic:
                return point.x
        return 1.0


def byte_popularity_curve(
    feature_bytes: np.ndarray, job_reads: list[np.ndarray]
) -> list[CdfPoint]:
    """Build a byte-weighted popularity CDF.

    *feature_bytes[f]* is the stored size of feature *f*;
    *job_reads[j][f]* is 1 when job *j* reads feature *f*.  Each stored
    byte's traffic weight is the number of jobs that read it; the curve
    orders bytes from hottest to coldest.
    """
    if not job_reads:
        raise ConfigError("need at least one job")
    reads = np.sum(job_reads, axis=0).astype(np.float64)  # jobs touching each feature
    order = np.argsort(reads)[::-1]
    bytes_sorted = feature_bytes[order].astype(np.float64)
    traffic_sorted = (feature_bytes * reads)[order].astype(np.float64)
    total_bytes = bytes_sorted.sum()
    total_traffic = traffic_sorted.sum()
    if total_bytes == 0 or total_traffic == 0:
        raise ConfigError("degenerate popularity inputs")
    x = np.cumsum(bytes_sorted) / total_bytes
    y = np.cumsum(traffic_sorted) / total_traffic
    return [CdfPoint(float(a), float(b)) for a, b in zip(x, y)]


#: Fraction of a job's read bytes that belong to the shared baseline
#: core (the rest is per-job experimentation).
CORE_SHARE_OF_JOB = 0.85
#: Fraction of core features each job drops (ablations, deprecations).
CORE_DROP_RATE = 0.05
#: Per-model probability that a job reads any given non-core feature.
#: Derived so the core/tail traffic balance reproduces each model's
#: Figure 7 statistic (bytes needed for 80% of traffic).
JOB_TAIL_READ_RATE = {"RM1": 0.135, "RM2": 0.118, "RM3": 0.050}


def simulate_month_of_jobs(
    model: ModelConfig,
    n_features: int = 2_000,
    n_jobs: int = 120,
    seed: int = 0,
) -> PopularityStudy:
    """Generate a month of per-model jobs and their popularity curve.

    Each job reads a shared *core* — the top-signal features holding
    ``CORE_SHARE_OF_JOB`` of an individual job's read bytes — minus a
    few dropped features, plus a random experimental tail read at the
    model's tail rate.  RM3's tiny tail rate makes individual ≈
    collective reads (its jobs barely vary, Section 5.2), while
    RM1/RM2's larger tails spread traffic over >60% of stored bytes.
    """
    rng = np.random.default_rng(seed)
    # Stored sizes: long-tailed, as real feature streams are.
    feature_bytes = rng.lognormal(mean=8.0, sigma=1.0, size=n_features)

    individual_fraction = model.dataset.pct_bytes_used / 100.0
    core_bytes_target = CORE_SHARE_OF_JOB * individual_fraction * feature_bytes.sum()

    # Features ranked by "signal quality"; the core is the top slice
    # by cumulative stored bytes.
    quality_order = rng.permutation(n_features)
    cumulative = np.cumsum(feature_bytes[quality_order])
    core_count = int(np.searchsorted(cumulative, core_bytes_target)) + 1
    core = quality_order[:core_count]
    experimental_pool = quality_order[core_count:]

    tail_rate = JOB_TAIL_READ_RATE.get(model.name, 0.10)
    jobs = []
    for _ in range(n_jobs):
        mask = np.zeros(n_features)
        mask[core] = 1.0
        tail_draw = rng.random(len(experimental_pool)) < tail_rate
        mask[experimental_pool[tail_draw]] = 1.0
        dropped = rng.choice(
            core, size=max(1, int(core_count * CORE_DROP_RATE)), replace=False
        )
        mask[dropped] = 0.0
        jobs.append(mask)

    return PopularityStudy(model, byte_popularity_curve(feature_bytes, jobs))
