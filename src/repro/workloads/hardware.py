"""Hardware specifications from the paper.

Table 10's compute-server generations (C-v1/v2/v3 and the hypothetical
C-vSotA), the ZionEX-like trainer hosts used in Sections 6.1-6.2, and
power figures for the datacenter power model (Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ConfigError
from ..common.resources import ResourceSpec
from ..common.units import GB, gbps, gigabytes


@dataclass(frozen=True)
class ComputeNodeSpec:
    """One row of Table 10."""

    name: str
    physical_cores: int
    nic_gbps: float
    memory_gb: float
    peak_mem_bw_gbs: float
    frequency_ghz: float = 2.5
    watts: float = 150.0

    def __post_init__(self) -> None:
        if self.physical_cores <= 0:
            raise ConfigError("cores must be positive")

    @property
    def mem_bw_per_core_gbs(self) -> float:
        """Peak memory bandwidth per core (Table 10 column)."""
        return self.peak_mem_bw_gbs / self.physical_cores

    @property
    def nic_bw_per_core_gbps(self) -> float:
        """NIC bandwidth per core (Table 10 column)."""
        return self.nic_gbps / self.physical_cores

    def resource_spec(self) -> ResourceSpec:
        """Convert to the fluid resource model's units."""
        return ResourceSpec(
            cpu_cycles_per_s=self.physical_cores * self.frequency_ghz * 1e9,
            mem_bw_bytes_per_s=self.peak_mem_bw_gbs * GB,
            nic_bytes_per_s=gbps(self.nic_gbps),
            memory_capacity_bytes=gigabytes(self.memory_gb),
        )


C_V1 = ComputeNodeSpec("C-v1", physical_cores=18, nic_gbps=12.5,
                       memory_gb=64, peak_mem_bw_gbs=75, watts=150.0)
C_V2 = ComputeNodeSpec("C-v2", physical_cores=26, nic_gbps=25.0,
                       memory_gb=64, peak_mem_bw_gbs=92, watts=180.0)
C_V3 = ComputeNodeSpec("C-v3", physical_cores=36, nic_gbps=25.0,
                       memory_gb=64, peak_mem_bw_gbs=83, watts=200.0)
C_VSOTA = ComputeNodeSpec("C-vSotA", physical_cores=64, nic_gbps=100.0,
                          memory_gb=1024, peak_mem_bw_gbs=205, watts=320.0)

COMPUTE_GENERATIONS = (C_V1, C_V2, C_V3, C_VSOTA)


@dataclass(frozen=True)
class TrainerNodeSpec:
    """An 8-GPU training node's host resources.

    ``v100_host`` mirrors the Section 6 testbed (two 28-core sockets,
    two 100 Gbps frontend NICs, 8 V100s); ``zionex`` the next-gen node
    with four sockets and four 100 Gbps NICs (Section 7.1).
    """

    name: str
    n_gpus: int
    sockets: int
    cores_per_socket: int
    nics_gbps: tuple[float, ...]
    peak_mem_bw_gbs: float
    frequency_ghz: float = 2.5
    gpu_watts: float = 300.0
    host_watts: float = 800.0

    @property
    def total_cores(self) -> int:
        """Host cores across sockets."""
        return self.sockets * self.cores_per_socket

    @property
    def total_watts(self) -> float:
        """Node power: GPUs plus host."""
        return self.n_gpus * self.gpu_watts + self.host_watts

    def resource_spec(self) -> ResourceSpec:
        """Host (frontend) resources available for data loading."""
        return ResourceSpec(
            cpu_cycles_per_s=self.total_cores * self.frequency_ghz * 1e9,
            mem_bw_bytes_per_s=self.peak_mem_bw_gbs * GB,
            nic_bytes_per_s=sum(gbps(n) for n in self.nics_gbps),
            memory_capacity_bytes=gigabytes(384),
        )


V100_TRAINER = TrainerNodeSpec(
    name="v100-trainer",
    n_gpus=8,
    sockets=2,
    cores_per_socket=28,
    nics_gbps=(100.0, 100.0),
    peak_mem_bw_gbs=150.0,
)

ZIONEX_TRAINER = TrainerNodeSpec(
    name="zionex",
    n_gpus=8,
    sockets=4,
    cores_per_socket=28,
    nics_gbps=(100.0, 100.0, 100.0, 100.0),
    peak_mem_bw_gbs=300.0,
    gpu_watts=400.0,
    host_watts=1200.0,
)
