"""Scaled-down dataset builders matching paper ratios.

Builds executable (MB-scale) tables whose *ratios* — dense/sparse
feature counts, coverage, sparse lengths, fraction of features
projected — mirror each RM's production dataset, plus the projection
and transform DAG a representative training job would use.  A declared
``scale_factor`` relates the miniature to the paper's PB numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..transforms.dag import TransformDag
from ..transforms.dense import Clamp, Logit
from ..transforms.generation import Bucketize, NGram
from ..transforms.sparse import FirstX, SigridHash
from ..warehouse.generator import DatasetProfile, SampleGenerator
from ..warehouse.schema import FeatureType, TableSchema
from ..warehouse.table import Table
from .models import ModelConfig

#: Shrink factor from production feature counts to executable ones.
FEATURE_SCALE = 0.02
#: Derived-feature IDs start here, clear of generator ID ranges.
DERIVED_BASE = 500_000


@dataclass
class MiniDataset:
    """An executable miniature of one RM's dataset and job."""

    model: ModelConfig
    table: Table
    schema: TableSchema
    projection: frozenset[int]
    dag: TransformDag
    output_ids: tuple[int, ...]
    generator: SampleGenerator

    @property
    def pct_features_projected(self) -> float:
        """Fraction of stored features the job reads (Table 5 analogue)."""
        return 100.0 * len(self.projection) / len(self.schema)


def build_mini_dataset(
    model: ModelConfig,
    partitions: list[str],
    rows_per_partition: int,
    seed: int = 0,
    feature_scale: float = FEATURE_SCALE,
) -> MiniDataset:
    """Create a populated miniature table + representative job for *model*.

    Feature counts scale by *feature_scale*; coverage and sparse-length
    statistics are taken from the paper verbatim.  The projection takes
    the paper's ``pct_features_used`` of stored features, biased toward
    high-coverage features as Section 5.1 observes ("read features
    typically exhibit larger coverage and sparse feature lengths").
    """
    stats = model.dataset
    # Keep the production dense:sparse mix: if the sparse side would
    # drop below a statistically stable floor, raise the whole scale
    # instead of just the sparse count (byte ratios depend on the mix).
    min_sparse = 12
    effective_scale = max(feature_scale, min_sparse / stats.n_sparse_features)
    n_dense = max(4, round(stats.n_float_features * effective_scale))
    n_sparse = max(min_sparse, round(stats.n_sparse_features * effective_scale))
    n_scored = max(1, n_sparse // 10)
    profile = DatasetProfile(
        n_dense=n_dense,
        n_sparse=n_sparse,
        n_scored=n_scored,
        avg_coverage=stats.avg_coverage,
        avg_sparse_length=stats.avg_sparse_length,
    )
    generator = SampleGenerator(profile, seed=seed)
    schema = generator.build_schema(f"{model.name.lower()}_table")
    table = Table(schema)
    generator.populate_table(table, partitions, rows_per_partition)

    projection = _pick_projection(model, schema, seed)
    dag, output_ids = _build_job_dag(model, schema, projection)
    return MiniDataset(
        model=model,
        table=table,
        schema=schema,
        projection=projection,
        dag=dag,
        output_ids=output_ids,
        generator=generator,
    )


def _pick_projection(
    model: ModelConfig, schema: TableSchema, seed: int = 0
) -> frozenset[int]:
    """Choose the job's feature projection at the paper's per-type rates.

    Tables 4 and 5 imply different selection rates for dense and sparse
    features (e.g. RM1 reads 1221 of 12115 float features but 298 of
    1763 sparse ones).  Within each type, selection favors coverage ×
    sparse length with noise — "read features typically exhibit larger
    coverage and sparse feature lengths" (Section 5.1) — which is what
    amplifies read bytes over read features.
    """
    import numpy as np

    rng = np.random.default_rng(seed + 17)
    dense_rate = model.features.n_dense / model.dataset.n_float_features
    sparse_rate = model.features.n_sparse / model.dataset.n_sparse_features

    dense_specs = [s for s in schema if s.ftype is FeatureType.DENSE]
    sparse_specs = [s for s in schema if s.ftype is not FeatureType.DENSE]

    bias = model.projection_length_bias

    def top_by_signal(specs: list, rate: float) -> list[int]:
        scores = [
            spec.coverage
            * (1.0 + spec.avg_sparse_length) ** bias
            * float(rng.lognormal(0.0, 0.25))
            for spec in specs
        ]
        order = sorted(range(len(specs)), key=lambda i: scores[i], reverse=True)
        take = max(1, round(len(specs) * rate))
        return [specs[i].feature_id for i in order[:take]]

    chosen = top_by_signal(dense_specs, dense_rate) + top_by_signal(
        sparse_specs, sparse_rate
    )
    return frozenset(chosen)


def _build_job_dag(
    model: ModelConfig, schema: TableSchema, projection: frozenset[int]
) -> tuple[TransformDag, tuple[int, ...]]:
    """A representative per-model transform DAG over projected features.

    The op mix tracks each model's ``transform_intensity``: RM1 chains
    expensive feature generation (NGram) over many features; RM3 mostly
    normalizes.  Every model normalizes dense features and hashes
    sparse features, as production DLRMs do (Section 6.4).
    """
    dense_ids = sorted(
        fid for fid in projection if schema.get(fid).name.startswith("dense_")
    )
    sparse_ids = sorted(
        fid
        for fid in projection
        if not schema.get(fid).name.startswith("dense_")
    )
    dag = TransformDag()
    outputs: list[int] = []
    next_id = DERIVED_BASE

    for fid in dense_ids:
        dag.add(next_id, Logit(fid))
        outputs.append(next_id)
        next_id += 1
    for fid in sparse_ids:
        dag.add(next_id, FirstX(fid, 32))
        dag.add(next_id + 1, SigridHash(next_id, table_size=1_000_000))
        outputs.append(next_id + 1)
        next_id += 2

    # Feature generation load scales with transform intensity.
    n_generated = round(model.transform_intensity * max(1, len(sparse_ids) // 2))
    for i in range(n_generated):
        if len(sparse_ids) >= 2:
            a = sparse_ids[i % len(sparse_ids)]
            b = sparse_ids[(i + 1) % len(sparse_ids)]
            dag.add(next_id, NGram([a, b], n=2))
        elif sparse_ids:
            dag.add(next_id, NGram([sparse_ids[0]], n=2))
        elif dense_ids:
            dag.add(next_id, Bucketize(dense_ids[i % len(dense_ids)], [-1.0, 0.0, 1.0]))
        else:
            break
        dag.add(next_id + 1, SigridHash(next_id, table_size=1_000_000))
        outputs.append(next_id + 1)
        next_id += 2

    if dense_ids:
        dag.add(next_id, Clamp(dense_ids[0], -3.0, 3.0))
        outputs.append(next_id)
        next_id += 1
    return dag, tuple(outputs)
