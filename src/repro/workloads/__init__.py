"""Workload configurations: RM1-3 models, datasets, hardware specs."""

from .datasets import DERIVED_BASE, FEATURE_SCALE, MiniDataset, build_mini_dataset
from .hardware import (
    C_V1,
    C_V2,
    C_V3,
    C_VSOTA,
    COMPUTE_GENERATIONS,
    V100_TRAINER,
    ZIONEX_TRAINER,
    ComputeNodeSpec,
    TrainerNodeSpec,
)
from .models import (
    ALL_MODELS,
    RM1,
    RM2,
    RM3,
    DatasetStats,
    DppThroughput,
    ModelConfig,
    ModelFeatures,
    TableSizes,
    model_by_name,
)

__all__ = [
    "ALL_MODELS",
    "C_V1",
    "C_V2",
    "C_V3",
    "C_VSOTA",
    "COMPUTE_GENERATIONS",
    "DERIVED_BASE",
    "DatasetStats",
    "DppThroughput",
    "FEATURE_SCALE",
    "MiniDataset",
    "ModelConfig",
    "ModelFeatures",
    "RM1",
    "RM2",
    "RM3",
    "TableSizes",
    "TrainerNodeSpec",
    "ComputeNodeSpec",
    "V100_TRAINER",
    "ZIONEX_TRAINER",
    "build_mini_dataset",
    "model_by_name",
]
