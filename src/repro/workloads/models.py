"""The three representative recommendation models RM1, RM2, RM3.

Each :class:`ModelConfig` carries the per-model constants the paper
reports across Tables 3, 4, 5, 8, and 9 plus the popularity skew behind
Figure 7.  Experiments read paper constants from here and compare them
against values measured on the scaled-down executable pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ConfigError
from ..common.units import GB, PB


@dataclass(frozen=True)
class ModelFeatures:
    """Table 4: features a representative model version requires."""

    n_dense: int
    n_sparse: int
    n_derived: int


@dataclass(frozen=True)
class DatasetStats:
    """Table 5: characteristics of the model's production table."""

    n_float_features: int
    n_sparse_features: int
    avg_coverage: float
    avg_sparse_length: float
    pct_features_used: float
    pct_bytes_used: float


@dataclass(frozen=True)
class TableSizes:
    """Table 3: compressed partition sizes (bytes)."""

    all_partitions: float
    each_partition: float
    used_partitions: float

    @property
    def n_partitions(self) -> int:
        """Approximate partition count implied by the sizes."""
        return round(self.all_partitions / self.each_partition)


@dataclass(frozen=True)
class DppThroughput:
    """Table 9: per-worker throughput on C-v1 and workers per trainer."""

    kqps: float
    storage_rx_gbs: float
    transform_rx_gbs: float
    transform_tx_gbs: float
    workers_per_trainer: float

    @property
    def storage_amplification(self) -> float:
        """Extract-vs-load network amplification (Section 6.3: 1.18-3.64x).

        Compressed bytes pulled from storage per preprocessed byte
        shipped to trainers.
        """
        return self.storage_rx_gbs / self.transform_tx_gbs


@dataclass(frozen=True)
class ModelConfig:
    """Everything the experiments need to know about one RM."""

    name: str
    features: ModelFeatures
    dataset: DatasetStats
    table_sizes: TableSizes
    trainer_gbs: float  # Table 8: GB/s per 8-GPU node
    dpp: DppThroughput
    popularity_bytes_for_80pct: float  # Fig 7: fraction of bytes serving 80% of I/O
    transform_intensity: float  # relative transform cycles per sample (RM2 = 1.0)
    working_set_mb_per_thread: float  # drives RM3's memory-capacity bound
    transform_mem_intensity: float = 1.0  # relative transform DRAM traffic
    projection_length_bias: float = 1.0  # how strongly jobs favor long features

    def __post_init__(self) -> None:
        if not 0 < self.popularity_bytes_for_80pct < 1:
            raise ConfigError("popularity fraction must be in (0, 1)")
        if self.trainer_gbs <= 0:
            raise ConfigError("trainer throughput must be positive")

    @property
    def trainer_bytes_per_s(self) -> float:
        """Table 8 in bytes/s."""
        return self.trainer_gbs * GB

    @property
    def bytes_per_sample(self) -> float:
        """Preprocessed tensor bytes per sample (Table 9 TX / QPS)."""
        return self.dpp.transform_tx_gbs * GB / (self.dpp.kqps * 1_000)

    @property
    def samples_per_s_per_trainer(self) -> float:
        """Trainer demand in samples/s implied by Tables 8 and 9."""
        return self.trainer_bytes_per_s / self.bytes_per_sample


RM1 = ModelConfig(
    name="RM1",
    features=ModelFeatures(n_dense=1221, n_sparse=298, n_derived=304),
    dataset=DatasetStats(
        n_float_features=12115,
        n_sparse_features=1763,
        avg_coverage=0.45,
        avg_sparse_length=25.97,
        pct_features_used=11.0,
        pct_bytes_used=37.0,
    ),
    table_sizes=TableSizes(
        all_partitions=13.45 * PB, each_partition=0.15 * PB, used_partitions=11.95 * PB
    ),
    trainer_gbs=16.50,
    dpp=DppThroughput(
        kqps=11.623,
        storage_rx_gbs=0.8,
        transform_rx_gbs=1.37,
        transform_tx_gbs=0.68,
        workers_per_trainer=24.16,
    ),
    popularity_bytes_for_80pct=0.39,
    transform_intensity=2.4,  # RM1's transforms are computationally expensive (§6.3)
    working_set_mb_per_thread=400.0,
)

RM2 = ModelConfig(
    name="RM2",
    features=ModelFeatures(n_dense=1113, n_sparse=306, n_derived=317),
    dataset=DatasetStats(
        n_float_features=12596,
        n_sparse_features=1817,
        avg_coverage=0.41,
        avg_sparse_length=25.57,
        pct_features_used=10.0,
        pct_bytes_used=34.0,
    ),
    table_sizes=TableSizes(
        all_partitions=29.18 * PB, each_partition=0.32 * PB, used_partitions=25.94 * PB
    ),
    trainer_gbs=4.69,
    dpp=DppThroughput(
        kqps=7.995,
        storage_rx_gbs=1.2,
        transform_rx_gbs=0.96,
        transform_tx_gbs=0.50,
        workers_per_trainer=9.44,
    ),
    popularity_bytes_for_80pct=0.37,
    transform_intensity=1.0,
    working_set_mb_per_thread=500.0,
)

RM3 = ModelConfig(
    name="RM3",
    features=ModelFeatures(n_dense=504, n_sparse=42, n_derived=1),
    dataset=DatasetStats(
        n_float_features=5707,
        n_sparse_features=188,
        avg_coverage=0.29,
        avg_sparse_length=19.64,
        pct_features_used=9.0,
        pct_bytes_used=21.0,
    ),
    table_sizes=TableSizes(
        all_partitions=2.93 * PB, each_partition=0.07 * PB, used_partitions=1.95 * PB
    ),
    trainer_gbs=12.00,
    dpp=DppThroughput(
        kqps=36.921,
        storage_rx_gbs=0.8,
        transform_rx_gbs=1.01,
        transform_tx_gbs=0.22,
        workers_per_trainer=55.22,
    ),
    popularity_bytes_for_80pct=0.18,
    transform_intensity=0.55,
    working_set_mb_per_thread=2400.0,  # RM3 is memory-capacity bound (§6.3)
    transform_mem_intensity=0.55,
    projection_length_bias=0.15,  # RM3's feature use is mostly dense/legacy
)

ALL_MODELS = (RM1, RM2, RM3)


def model_by_name(name: str) -> ModelConfig:
    """Look up RM1/RM2/RM3 by name."""
    for model in ALL_MODELS:
        if model.name == name:
            return model
    raise ConfigError(f"unknown model {name!r}")
