"""The Tectonic filesystem: append-only files over replicated blocks.

Files are append-only (Section 3.1.2); writers append bytes which are
chunked into blocks, each block placed on ``replication`` distinct
nodes chosen by free capacity.  Reads address a (file, offset, length)
range; the filesystem routes each block-range to one replica and
accounts the I/O on that node.

The filesystem exposes :meth:`TectonicFilesystem.fetcher`, an adapter
matching the DWRF reader's byte-range interface, so the columnar layer
reads "through" real placement and I/O accounting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..common.errors import StorageError
from .block import Block
from .media import TECTONIC_CHUNK_BYTES, MediaModel, hdd_node
from .node import StorageNode


@dataclass
class TectonicFile:
    """Metadata for one append-only file."""

    name: str
    blocks: list[Block] = field(default_factory=list)
    sealed: bool = False

    @property
    def length(self) -> int:
        """Total bytes in the file."""
        return sum(block.length for block in self.blocks)


class TectonicFilesystem:
    """An in-process model of Tectonic: nodes, placement, replication."""

    def __init__(
        self,
        n_nodes: int = 6,
        media: MediaModel | None = None,
        replication: int = 3,
        chunk_bytes: int = TECTONIC_CHUNK_BYTES,
    ) -> None:
        if n_nodes < replication:
            raise StorageError(
                f"need at least {replication} nodes for {replication}x replication"
            )
        if chunk_bytes <= 0:
            raise StorageError("chunk size must be positive")
        self.media = media or hdd_node()
        self.nodes = [StorageNode(i, self.media) for i in range(n_nodes)]
        self.replication = replication
        self.chunk_bytes = chunk_bytes
        self._files: dict[str, TectonicFile] = {}
        self._block_ids = itertools.count()
        self._replica_rr = 0

    # -- namespace ---------------------------------------------------------

    def create(self, name: str) -> TectonicFile:
        """Create a new empty file."""
        if name in self._files:
            raise StorageError(f"file {name} already exists")
        file = TectonicFile(name)
        self._files[name] = file
        return file

    def file(self, name: str) -> TectonicFile:
        """Look up a file by name."""
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no file named {name}") from None

    def delete(self, name: str) -> None:
        """Delete a file, releasing replica capacity."""
        file = self.file(name)
        for block in file.blocks:
            for node_id in block.replica_nodes:
                self.nodes[node_id].release(block.length)
        del self._files[name]

    def list_files(self) -> list[str]:
        """All file names."""
        return sorted(self._files)

    # -- writes --------------------------------------------------------------

    def append(self, name: str, data: bytes) -> None:
        """Append bytes to a file, chunking into materialized blocks."""
        file = self.file(name)
        if file.sealed:
            raise StorageError(f"file {name} is sealed (append-only, immutable)")
        for start in range(0, len(data), self.chunk_bytes):
            chunk = data[start : start + self.chunk_bytes]
            self._add_block(file, len(chunk), chunk)

    def append_virtual(self, name: str, n_bytes: int) -> None:
        """Append size-only blocks (for provisioning-scale studies)."""
        file = self.file(name)
        if file.sealed:
            raise StorageError(f"file {name} is sealed (append-only, immutable)")
        remaining = n_bytes
        while remaining > 0:
            chunk = min(remaining, self.chunk_bytes)
            self._add_block(file, chunk, None)
            remaining -= chunk

    def seal(self, name: str) -> None:
        """Seal a file; further appends are rejected."""
        self.file(name).sealed = True

    def _add_block(self, file: TectonicFile, length: int, data: bytes | None) -> None:
        replicas = self._pick_replicas()
        for node_id in replicas:
            self.nodes[node_id].allocate(length)
        file.blocks.append(
            Block(
                block_id=next(self._block_ids),
                file_name=file.name,
                index=len(file.blocks),
                length=length,
                data=data,
                replica_nodes=replicas,
            )
        )

    def _pick_replicas(self) -> tuple[int, ...]:
        """Place replicas on the nodes with the most free space."""
        ranked = sorted(self.nodes, key=lambda node: node.used_bytes)
        return tuple(node.node_id for node in ranked[: self.replication])

    # -- reads ---------------------------------------------------------------

    def read(self, name: str, offset: int, length: int) -> bytes:
        """Read a byte range, touching each covering block's replica."""
        file = self.file(name)
        if offset < 0 or offset + length > file.length:
            raise StorageError(
                f"read [{offset}, {offset + length}) beyond file of {file.length}"
            )
        out = bytearray()
        cursor = 0
        remaining_offset = offset
        remaining_length = length
        for block in file.blocks:
            block_start = cursor
            block_end = cursor + block.length
            cursor = block_end
            if block_end <= remaining_offset:
                continue
            if remaining_length <= 0:
                break
            inner_offset = remaining_offset - block_start
            take = min(block.length - inner_offset, remaining_length)
            node = self._route_replica(block)
            node.record_read(take)
            out.extend(block.read(inner_offset, take))
            remaining_offset += take
            remaining_length -= take
        return bytes(out)

    def _route_replica(self, block: Block) -> StorageNode:
        """Round-robin reads across a block's replicas."""
        replicas = block.replica_nodes
        node_id = replicas[self._replica_rr % len(replicas)]
        self._replica_rr += 1
        return self.nodes[node_id]

    def fetcher(self, name: str):
        """A ``(offset, length) -> bytes`` adapter for the DWRF reader."""

        def fetch(offset: int, length: int) -> bytes:
            return self.read(name, offset, length)

        return fetch

    # -- accounting ------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes allocated across all nodes (includes replication)."""
        return sum(node.used_bytes for node in self.nodes)

    def logical_bytes(self) -> int:
        """Bytes of file content (before replication)."""
        return sum(file.length for file in self._files.values())

    def total_io(self) -> tuple[int, int]:
        """(reads served, bytes read) across all nodes."""
        reads = sum(node.served.io_count for node in self.nodes)
        read_bytes = sum(node.served.bytes_read for node in self.nodes)
        return reads, read_bytes
