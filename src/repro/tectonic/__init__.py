"""Tectonic: an append-only distributed filesystem with media models."""

from .block import Block
from .cache import CacheStats, FeatureCache, StreamKey
from .cluster import (
    ProvisioningDemand,
    ProvisioningPlan,
    TieredPlan,
    provision,
    provision_tiered,
)
from .filesystem import TectonicFile, TectonicFilesystem
from .media import (
    COALESCE_WINDOW_BYTES,
    TECTONIC_CHUNK_BYTES,
    MediaModel,
    effective_iops,
    hdd_node,
    ssd_node,
)
from .node import ServedIO, StorageNode

__all__ = [
    "CacheStats",
    "FeatureCache",
    "StreamKey",
    "Block",
    "COALESCE_WINDOW_BYTES",
    "MediaModel",
    "ProvisioningDemand",
    "ProvisioningPlan",
    "ServedIO",
    "StorageNode",
    "TECTONIC_CHUNK_BYTES",
    "TectonicFile",
    "TectonicFilesystem",
    "TieredPlan",
    "effective_iops",
    "hdd_node",
    "provision",
    "provision_tiered",
    "ssd_node",
]
