"""Storage cluster provisioning: the capacity-vs-IOPS balance.

Section 7.1 reports an over 8× *throughput-to-storage gap*: to satisfy
training-driven IOPS, Meta must provision far more HDD capacity than
datasets need, even after 3× replication.  This module computes that
provisioning math for arbitrary dataset sizes, demand, I/O size
distributions, and media mixes — the substrate for the heterogeneous
storage studies (Section 7.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..common.errors import ConfigError
from .media import MediaModel


@dataclass(frozen=True)
class ProvisioningDemand:
    """What a datacenter region must serve.

    *dataset_bytes* is the logical dataset footprint, *read_bytes_per_s*
    the aggregate training-driven read throughput, and *io_sizes* a
    representative sample of physical read sizes (e.g. Table 6).
    """

    dataset_bytes: float
    read_bytes_per_s: float
    io_sizes: Sequence[float]
    replication: int = 3

    def __post_init__(self) -> None:
        if self.dataset_bytes <= 0 or self.read_bytes_per_s <= 0:
            raise ConfigError("dataset size and read demand must be positive")
        if not self.io_sizes:
            raise ConfigError("io_sizes sample must be non-empty")
        if self.replication < 1:
            raise ConfigError("replication must be at least 1")

    @property
    def mean_io_bytes(self) -> float:
        """Mean physical read size."""
        return sum(self.io_sizes) / len(self.io_sizes)

    @property
    def read_iops(self) -> float:
        """Reads per second implied by throughput and mean I/O size."""
        return self.read_bytes_per_s / self.mean_io_bytes


@dataclass(frozen=True)
class ProvisioningPlan:
    """Node counts and the resulting throughput-to-storage gap."""

    media: MediaModel
    nodes_for_capacity: int
    nodes_for_iops: int

    @property
    def nodes_required(self) -> int:
        """Nodes provisioned: max of the two constraints."""
        return max(self.nodes_for_capacity, self.nodes_for_iops)

    @property
    def throughput_to_storage_gap(self) -> float:
        """How many times more nodes IOPS demands than capacity does.

        > 1 means the fleet buys capacity it does not need just to get
        spindles; the paper reports over 8× for HDD.
        """
        return self.nodes_for_iops / self.nodes_for_capacity

    @property
    def total_watts(self) -> float:
        """Power of the provisioned nodes."""
        return self.nodes_required * self.media.watts

    @property
    def total_capacity_bytes(self) -> float:
        """Capacity of the provisioned nodes."""
        return self.nodes_required * self.media.capacity_bytes


def provision(demand: ProvisioningDemand, media: MediaModel) -> ProvisioningPlan:
    """Compute nodes needed by capacity and by IOPS for one media type."""
    replicated_bytes = demand.dataset_bytes * demand.replication
    nodes_capacity = max(1, math.ceil(replicated_bytes / media.capacity_bytes))
    per_node_iops = media.iops_at_size(demand.mean_io_bytes)
    nodes_iops = max(1, math.ceil(demand.read_iops / per_node_iops))
    return ProvisioningPlan(media, nodes_capacity, nodes_iops)


@dataclass(frozen=True)
class TieredPlan:
    """A two-tier plan: hot bytes on SSD, the rest on HDD."""

    hot_fraction: float
    traffic_absorbed: float
    ssd_plan: ProvisioningPlan
    hdd_plan: ProvisioningPlan

    @property
    def total_watts(self) -> float:
        """Combined power of both tiers."""
        return self.ssd_plan.total_watts + self.hdd_plan.total_watts


def provision_tiered(
    demand: ProvisioningDemand,
    hdd: MediaModel,
    ssd: MediaModel,
    hot_fraction: float,
    traffic_absorbed: float,
) -> TieredPlan:
    """Split demand between an SSD cache tier and an HDD capacity tier.

    *hot_fraction* of the dataset goes to SSD and absorbs
    *traffic_absorbed* of the read traffic (the Figure 7 relationship,
    e.g. 0.39 of bytes absorbing 0.80 of traffic for RM1).
    """
    if not 0 < hot_fraction < 1:
        raise ConfigError("hot_fraction must be in (0, 1)")
    if not 0 < traffic_absorbed <= 1:
        raise ConfigError("traffic_absorbed must be in (0, 1]")
    if traffic_absorbed < hot_fraction:
        raise ConfigError("a useful cache absorbs more traffic than it holds bytes")
    ssd_demand = ProvisioningDemand(
        dataset_bytes=demand.dataset_bytes * hot_fraction,
        read_bytes_per_s=demand.read_bytes_per_s * traffic_absorbed,
        io_sizes=demand.io_sizes,
        replication=demand.replication,
    )
    hdd_demand = ProvisioningDemand(
        dataset_bytes=demand.dataset_bytes * (1 - hot_fraction),
        read_bytes_per_s=demand.read_bytes_per_s * (1 - traffic_absorbed),
        io_sizes=demand.io_sizes,
        replication=demand.replication,
    )
    return TieredPlan(
        hot_fraction=hot_fraction,
        traffic_absorbed=traffic_absorbed,
        ssd_plan=provision(ssd_demand, ssd),
        hdd_plan=provision(hdd_demand, hdd),
    )
