"""Storage nodes: media + capacity + I/O accounting.

A node owns a media model and tracks stored bytes and served I/O so the
cluster can report utilization, effective IOPS, and power efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import CapacityError, StorageError
from .media import MediaModel


@dataclass
class ServedIO:
    """Aggregate record of reads a node has served."""

    io_count: int = 0
    bytes_read: int = 0
    seeks: int = 0

    def busy_time(self, media: MediaModel) -> float:
        """Seconds of device time consumed by the served reads."""
        return media.trace_time([self.bytes_read], seeks=0) + media.seek_time_s * self.seeks


class StorageNode:
    """One storage node in a Tectonic cluster."""

    def __init__(self, node_id: int, media: MediaModel) -> None:
        self.node_id = node_id
        self.media = media
        self.used_bytes = 0
        self.served = ServedIO()

    @property
    def free_bytes(self) -> float:
        """Remaining capacity."""
        return self.media.capacity_bytes - self.used_bytes

    def allocate(self, n_bytes: int) -> None:
        """Reserve capacity for a block replica."""
        if n_bytes < 0:
            raise StorageError("cannot allocate negative bytes")
        if n_bytes > self.free_bytes:
            raise CapacityError(
                f"node {self.node_id} has {self.free_bytes:.0f} B free, "
                f"needs {n_bytes}"
            )
        self.used_bytes += n_bytes

    def release(self, n_bytes: int) -> None:
        """Return capacity when a block is deleted."""
        if n_bytes < 0 or n_bytes > self.used_bytes:
            raise StorageError("release out of range")
        self.used_bytes -= n_bytes

    def record_read(self, n_bytes: int, *, sequential: bool = False) -> float:
        """Account one served read; returns its service time."""
        self.served.io_count += 1
        self.served.bytes_read += n_bytes
        if not sequential:
            self.served.seeks += 1
        return self.media.service_time(n_bytes, sequential=sequential)

    @property
    def utilization(self) -> float:
        """Capacity utilization in [0, 1]."""
        return self.used_bytes / self.media.capacity_bytes
