"""SSD feature-stream caching: Section 7.2's heterogeneous storage.

"There are further software and hardware optimization opportunities,
such as placing commonly-used features (Figure 7) on SSD-based caches."
This module implements that cache in front of the HDD tier:

* admission by *feature popularity* — the storage layer predicts hot
  streams from recent training-job reads (the same signal feature
  reordering uses);
* byte-budgeted capacity with popularity-weighted eviction;
* service-time accounting against both media so experiments can
  measure delivered throughput and power per configuration.

The cache indexes logical *stream ranges* (file, offset, length), the
natural cacheable unit of DWRF reads.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..common.errors import StorageError
from .media import MediaModel, hdd_node, ssd_node

#: Default bound on remembered-but-not-resident keys (the ghost list).
DEFAULT_GHOST_CAPACITY = 65_536


@dataclass(frozen=True)
class StreamKey:
    """Identity of one cached byte range."""

    file_name: str
    offset: int
    length: int


@dataclass
class CacheStats:
    """Hit/miss accounting in requests and bytes."""

    hits: int = 0
    misses: int = 0
    hit_bytes: int = 0
    miss_bytes: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Request hit rate; 0 when never used."""
        return self.hits / self.requests if self.requests else 0.0

    @property
    def byte_hit_rate(self) -> float:
        """Byte-weighted hit rate; 0 when never used."""
        total = self.hit_bytes + self.miss_bytes
        return self.hit_bytes / total if total else 0.0


class FeatureCache:
    """Popularity-admitted, byte-budgeted SSD cache over an HDD tier."""

    def __init__(
        self,
        capacity_bytes: int,
        ssd: MediaModel | None = None,
        hdd: MediaModel | None = None,
        admission_threshold: int = 2,
        ghost_capacity: int = DEFAULT_GHOST_CAPACITY,
    ) -> None:
        if capacity_bytes <= 0:
            raise StorageError("cache capacity must be positive")
        if admission_threshold < 1:
            raise StorageError("admission threshold must be at least 1")
        if ghost_capacity < 1:
            raise StorageError("ghost capacity must be at least 1")
        self.capacity_bytes = capacity_bytes
        self.ssd = ssd or ssd_node()
        self.hdd = hdd or hdd_node()
        self.admission_threshold = admission_threshold
        self.ghost_capacity = ghost_capacity
        self._resident: dict[StreamKey, int] = {}  # key -> popularity
        # Miss history for admission ("ghost" entries: remembered, not
        # resident).  Bounded: an unbounded ghost list grows linearly
        # under scan workloads — every missed key remembered forever.
        # Keys are kept in recency-of-miss order; when full, the
        # coldest entry (least recently missed, which under a scan is
        # also the lowest-count) is forgotten.
        self._ghost: OrderedDict[StreamKey, int] = OrderedDict()
        self.used_bytes = 0
        self.stats = CacheStats()
        self._ssd_time = 0.0
        self._hdd_time = 0.0

    # -- the read path ---------------------------------------------------------

    def read(self, key: StreamKey, *, sequential: bool = False) -> float:
        """Serve one stream read; returns the service time.

        Hits go to SSD; misses go to HDD, bump the key's popularity,
        and are admitted once the key has been requested
        ``admission_threshold`` times (scan resistance).
        """
        if key in self._resident:
            self.stats.hits += 1
            self.stats.hit_bytes += key.length
            self._resident[key] += 1
            service = self.ssd.service_time(key.length, sequential=sequential)
            self._ssd_time += service
            return service

        self.stats.misses += 1
        self.stats.miss_bytes += key.length
        count = self._ghost.pop(key, 0) + 1
        if count >= self.admission_threshold:
            self._admit(key, count)
        else:
            self._ghost[key] = count  # re-insert at the hot (recent) end
            if len(self._ghost) > self.ghost_capacity:
                self._ghost.popitem(last=False)
        service = self.hdd.service_time(key.length, sequential=sequential)
        self._hdd_time += service
        return service

    def _admit(self, key: StreamKey, popularity: int) -> None:
        if key.length > self.capacity_bytes:
            return  # never cache a range bigger than the whole tier
        while self.used_bytes + key.length > self.capacity_bytes:
            self._evict_coldest()
        self._resident[key] = popularity
        self.used_bytes += key.length

    def _evict_coldest(self) -> None:
        if not self._resident:
            raise StorageError("cache accounting corrupt: nothing to evict")
        coldest = min(self._resident, key=lambda k: (self._resident[k], -k.length))
        self.used_bytes -= coldest.length
        # Demote to the ghost list so a re-warming key re-admits fast;
        # the ghost bound still applies.
        self._ghost[coldest] = self._resident.pop(coldest)
        if len(self._ghost) > self.ghost_capacity:
            self._ghost.popitem(last=False)
        self.stats.evictions += 1

    # -- accounting ---------------------------------------------------------------

    @property
    def resident_keys(self) -> int:
        """Number of cached stream ranges."""
        return len(self._resident)

    @property
    def ghost_keys(self) -> int:
        """Number of remembered-but-not-resident keys (bounded)."""
        return len(self._ghost)

    @property
    def tracked_keys(self) -> int:
        """Total keys the cache holds metadata for — the memory bound."""
        return len(self._resident) + len(self._ghost)

    def contains(self, key: StreamKey) -> bool:
        """Whether a range is currently resident."""
        return key in self._resident

    def total_service_time(self) -> float:
        """Device time consumed across both tiers."""
        return self._ssd_time + self._hdd_time

    def delivered_throughput(self) -> float:
        """Bytes served per second of device time."""
        total_time = self.total_service_time()
        if total_time == 0:
            raise StorageError("no reads served yet")
        return (self.stats.hit_bytes + self.stats.miss_bytes) / total_time

    def hdd_only_time(self) -> float:
        """Counterfactual: device time had every read gone to HDD."""
        served = self.stats.hit_bytes + self.stats.miss_bytes
        if self.stats.requests == 0:
            raise StorageError("no reads served yet")
        mean = served / self.stats.requests
        return self.stats.requests * self.hdd.service_time(mean)

    def speedup_vs_hdd(self) -> float:
        """Delivered-throughput gain over the all-HDD counterfactual."""
        return self.hdd_only_time() / self.total_service_time()
