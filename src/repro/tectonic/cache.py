"""SSD feature-stream caching: Section 7.2's heterogeneous storage.

"There are further software and hardware optimization opportunities,
such as placing commonly-used features (Figure 7) on SSD-based caches."
This module implements that cache in front of the HDD tier:

* admission by *feature popularity* — the storage layer predicts hot
  streams from recent training-job reads (the same signal feature
  reordering uses);
* byte-budgeted capacity with popularity-weighted eviction;
* service-time accounting against both media so experiments can
  measure delivered throughput and power per configuration.

The cache indexes logical *stream ranges* (file, offset, length), the
natural cacheable unit of DWRF reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import StorageError
from .media import MediaModel, hdd_node, ssd_node


@dataclass(frozen=True)
class StreamKey:
    """Identity of one cached byte range."""

    file_name: str
    offset: int
    length: int


@dataclass
class CacheStats:
    """Hit/miss accounting in requests and bytes."""

    hits: int = 0
    misses: int = 0
    hit_bytes: int = 0
    miss_bytes: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Request hit rate; 0 when never used."""
        return self.hits / self.requests if self.requests else 0.0

    @property
    def byte_hit_rate(self) -> float:
        """Byte-weighted hit rate; 0 when never used."""
        total = self.hit_bytes + self.miss_bytes
        return self.hit_bytes / total if total else 0.0


class FeatureCache:
    """Popularity-admitted, byte-budgeted SSD cache over an HDD tier."""

    def __init__(
        self,
        capacity_bytes: int,
        ssd: MediaModel | None = None,
        hdd: MediaModel | None = None,
        admission_threshold: int = 2,
    ) -> None:
        if capacity_bytes <= 0:
            raise StorageError("cache capacity must be positive")
        if admission_threshold < 1:
            raise StorageError("admission threshold must be at least 1")
        self.capacity_bytes = capacity_bytes
        self.ssd = ssd or ssd_node()
        self.hdd = hdd or hdd_node()
        self.admission_threshold = admission_threshold
        self._resident: dict[StreamKey, int] = {}  # key -> popularity
        self._popularity: dict[StreamKey, int] = {}
        self.used_bytes = 0
        self.stats = CacheStats()
        self._ssd_time = 0.0
        self._hdd_time = 0.0

    # -- the read path ---------------------------------------------------------

    def read(self, key: StreamKey, *, sequential: bool = False) -> float:
        """Serve one stream read; returns the service time.

        Hits go to SSD; misses go to HDD, bump the key's popularity,
        and are admitted once the key has been requested
        ``admission_threshold`` times (scan resistance).
        """
        if key in self._resident:
            self.stats.hits += 1
            self.stats.hit_bytes += key.length
            self._popularity[key] = self._popularity.get(key, 0) + 1
            self._resident[key] = self._popularity[key]
            service = self.ssd.service_time(key.length, sequential=sequential)
            self._ssd_time += service
            return service

        self.stats.misses += 1
        self.stats.miss_bytes += key.length
        count = self._popularity.get(key, 0) + 1
        self._popularity[key] = count
        if count >= self.admission_threshold:
            self._admit(key)
        service = self.hdd.service_time(key.length, sequential=sequential)
        self._hdd_time += service
        return service

    def _admit(self, key: StreamKey) -> None:
        if key.length > self.capacity_bytes:
            return  # never cache a range bigger than the whole tier
        while self.used_bytes + key.length > self.capacity_bytes:
            self._evict_coldest()
        self._resident[key] = self._popularity[key]
        self.used_bytes += key.length

    def _evict_coldest(self) -> None:
        if not self._resident:
            raise StorageError("cache accounting corrupt: nothing to evict")
        coldest = min(self._resident, key=lambda k: (self._resident[k], -k.length))
        self.used_bytes -= coldest.length
        del self._resident[coldest]
        self.stats.evictions += 1

    # -- accounting ---------------------------------------------------------------

    @property
    def resident_keys(self) -> int:
        """Number of cached stream ranges."""
        return len(self._resident)

    def contains(self, key: StreamKey) -> bool:
        """Whether a range is currently resident."""
        return key in self._resident

    def total_service_time(self) -> float:
        """Device time consumed across both tiers."""
        return self._ssd_time + self._hdd_time

    def delivered_throughput(self) -> float:
        """Bytes served per second of device time."""
        total_time = self.total_service_time()
        if total_time == 0:
            raise StorageError("no reads served yet")
        return (self.stats.hit_bytes + self.stats.miss_bytes) / total_time

    def hdd_only_time(self) -> float:
        """Counterfactual: device time had every read gone to HDD."""
        served = self.stats.hit_bytes + self.stats.miss_bytes
        if self.stats.requests == 0:
            raise StorageError("no reads served yet")
        mean = served / self.stats.requests
        return self.stats.requests * self.hdd.service_time(mean)

    def speedup_vs_hdd(self) -> float:
        """Delivered-throughput gain over the all-HDD counterfactual."""
        return self.hdd_only_time() / self.total_service_time()
