"""Blocks: the durability unit of the Tectonic filesystem.

Tectonic "splits files into durable blocks distributed across HDD
storage nodes" (Section 3.1.2).  A block may be *materialized* (holding
real bytes, used by small-scale end-to-end experiments) or *virtual*
(size-only, used by large-scale provisioning studies where data content
is irrelevant).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import StorageError


@dataclass
class Block:
    """One chunk of a file, replicated across storage nodes."""

    block_id: int
    file_name: str
    index: int
    length: int
    data: bytes | None = None
    replica_nodes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.length < 0:
            raise StorageError("block length cannot be negative")
        if self.data is not None and len(self.data) != self.length:
            raise StorageError("block data does not match declared length")

    @property
    def is_virtual(self) -> bool:
        """Whether the block tracks size only (no payload)."""
        return self.data is None

    def read(self, offset: int, length: int) -> bytes:
        """Read a byte range from a materialized block."""
        if self.data is None:
            raise StorageError("cannot read payload of a virtual block")
        if offset < 0 or offset + length > self.length:
            raise StorageError(
                f"read [{offset}, {offset + length}) outside block of {self.length}"
            )
        return self.data[offset : offset + length]
