"""Storage media service-time and power models.

The paper's storage-layer findings are consequences of HDD mechanics:
every non-sequential read pays a seek, so small I/Os (Table 6) collapse
achievable IOPS and throughput (Table 12's −97% after feature
flattening).  We model a read as ``seek_time + bytes / bandwidth`` and
derive throughput and IOPS from real I/O traces.

The node presets are calibrated so that the SSD node provides ≈326%
IOPS per watt and ≈9% capacity per watt relative to the HDD node, the
two ratios Section 7.2 reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..common.errors import ConfigError
from ..common.units import GB, MB, TB, mebibytes


@dataclass(frozen=True)
class MediaModel:
    """Analytical model of one storage device/node's read path."""

    name: str
    seek_time_s: float
    bandwidth_bytes_per_s: float
    capacity_bytes: float
    watts: float

    def __post_init__(self) -> None:
        if self.seek_time_s < 0:
            raise ConfigError("seek time cannot be negative")
        if self.bandwidth_bytes_per_s <= 0 or self.capacity_bytes <= 0:
            raise ConfigError("bandwidth and capacity must be positive")
        if self.watts <= 0:
            raise ConfigError("power must be positive")

    def service_time(self, io_bytes: float, *, sequential: bool = False) -> float:
        """Seconds to serve one read of *io_bytes*.

        Sequential reads (continuing the previous transfer) skip the
        seek; random reads pay it.
        """
        if io_bytes < 0:
            raise ConfigError("io size cannot be negative")
        seek = 0.0 if sequential else self.seek_time_s
        return seek + io_bytes / self.bandwidth_bytes_per_s

    def iops_at_size(self, io_bytes: float) -> float:
        """Random-read IOPS the device sustains at a fixed I/O size."""
        return 1.0 / self.service_time(io_bytes)

    def throughput_at_size(self, io_bytes: float) -> float:
        """Random-read bytes/s at a fixed I/O size."""
        return io_bytes / self.service_time(io_bytes)

    def iops_per_watt(self, io_bytes: float) -> float:
        """Power efficiency of random reads at a fixed I/O size."""
        return self.iops_at_size(io_bytes) / self.watts

    def capacity_per_watt(self) -> float:
        """Bytes of capacity per watt."""
        return self.capacity_bytes / self.watts

    def trace_time(self, io_sizes: Sequence[float], seeks: int) -> float:
        """Seconds to serve a trace of reads containing *seeks* seeks."""
        if seeks < 0 or seeks > len(io_sizes):
            raise ConfigError("seek count out of range")
        transfer = sum(io_sizes) / self.bandwidth_bytes_per_s
        return transfer + seeks * self.seek_time_s

    def trace_throughput(
        self, io_sizes: Sequence[float], seeks: int, useful_bytes: float | None = None
    ) -> float:
        """Useful bytes/s delivered for a trace of reads.

        *useful_bytes* defaults to the full transfer; pass the
        projection-relevant byte count to measure goodput in the
        presence of over-reads.
        """
        time = self.trace_time(io_sizes, seeks)
        if time == 0:
            raise ConfigError("empty trace has no throughput")
        delivered = sum(io_sizes) if useful_bytes is None else useful_bytes
        return delivered / time


def hdd_node() -> MediaModel:
    """An HDD-based Tectonic storage node.

    ~15 spindles behind one node: aggregate 216 TB, ~1.5 GB/s streaming,
    an effective 0.53 ms average seek (15 actuators in parallel), 72 W.
    """
    return MediaModel(
        name="hdd-node",
        seek_time_s=0.00053,
        bandwidth_bytes_per_s=1.5 * GB,
        capacity_bytes=216 * TB,
        watts=72.0,
    )


def ssd_node() -> MediaModel:
    """An SSD-based storage node.

    Calibrated against :func:`hdd_node` to the paper's Section 7.2
    ratios: ≈326% IOPS/W and ≈9% capacity/W at 4 KiB random reads.
    """
    return MediaModel(
        name="ssd-node",
        seek_time_s=0.000326,  # node-level: software + NIC overhead dominates flash
        bandwidth_bytes_per_s=6.0 * GB,
        capacity_bytes=9.72 * TB,
        watts=36.0,
    )


TECTONIC_CHUNK_BYTES = int(mebibytes(8))  # "almost 8 MB (Tectonic's chunk size)"
COALESCE_WINDOW_BYTES = int(mebibytes(1.25))  # production coalesced-read window


def effective_iops(media: MediaModel, io_sizes: Iterable[float]) -> float:
    """IOPS over a mixed-size random trace (each read seeks)."""
    sizes = list(io_sizes)
    if not sizes:
        raise ConfigError("empty I/O trace")
    total_time = media.trace_time(sizes, seeks=len(sizes))
    return len(sizes) / total_time
