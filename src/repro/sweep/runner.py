"""The sweep executor: scenarios across cores, results reduced.

:func:`run_scenario_spec` is the per-process unit of work — a module
top-level function taking one picklable :class:`ScenarioSpec` and
returning one picklable :class:`ScenarioResult`, so it fans out through
``ProcessPoolExecutor`` unchanged.  :class:`SweepRunner` owns the
fan-out policy: inline execution for ``jobs=1`` (no pool overhead,
easiest to debug, what CI determinism tests use) and a process pool
otherwise.  Determinism holds across both: every scenario seeds its own
trace and fault RNGs from the spec, and :class:`SweepReport` sorts
results by name before aggregating, so process scheduling cannot leak
into the artifact.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor

from ..chaos.runner import schedule_fleet_faults
from ..common.errors import ConfigError
from ..fleet.jobs import JobGenerator
from ..fleet.simulator import FleetSimulator
from .grid import ScenarioGrid, ScenarioSpec
from .report import ScenarioResult, SweepReport

#: Events per scenario before a starved fleet is declared runaway.
MAX_EVENTS_PER_SCENARIO = 5_000_000


def run_scenario_spec(spec: ScenarioSpec) -> ScenarioResult:
    """Run one scenario to completion (or horizon) and reduce it."""
    start = time.perf_counter()
    jobs = JobGenerator(spec.mix, seed=spec.trace_seed).generate(spec.duration_s)
    if not jobs:
        # A legal cell: a sparse mix over a short window can draw zero
        # arrivals for some seed.  Report the empty outcome rather than
        # poisoning the whole sweep.
        return ScenarioResult(
            name=spec.name,
            cell=spec.cell,
            trace_seed=spec.trace_seed,
            jobs_submitted=0,
            jobs_completed=0,
            peak_concurrency=0,
            makespan_s=0.0,
            aggregate_samples_per_s=float("nan"),
            mean_slowdown=float("nan"),
            mean_stall_fraction=float("nan"),
            p95_queue_delay_s=float("nan"),
            mean_storage_utilization=0.0,
            peak_storage_utilization=0.0,
            peak_power_watts=0.0,
            events_fired=0,
            wall_s=time.perf_counter() - start,
        )
    oversized = [j for j in jobs if j.trainer_nodes > spec.config.n_trainer_nodes]
    if oversized:
        raise ConfigError(
            f"scenario {spec.name}: mix draws jobs larger than the region "
            f"({len(oversized)} need more than {spec.config.n_trainer_nodes} trainers)"
        )
    simulator = FleetSimulator(spec.config, jobs)
    if spec.faults:
        # Victim selection round-robins over the trace's job ids,
        # rotated by the spec's stable fault seed so different cells
        # sharing a trace target different victims.  The fault log is
        # discarded — sweeps read distributions, not narratives.
        job_ids = [j.job_id for j in jobs]
        offset = spec.fault_seed % len(job_ids)
        schedule_fleet_faults(
            simulator, list(spec.faults), job_ids=job_ids[offset:] + job_ids[:offset]
        )
    fired_before = simulator.clock.fired
    report = simulator.run(
        horizon_s=spec.horizon_s, max_events=MAX_EVENTS_PER_SCENARIO
    )
    events = simulator.clock.fired - fired_before
    return ScenarioResult.from_fleet_report(
        name=spec.name,
        cell=spec.cell,
        trace_seed=spec.trace_seed,
        report=report,
        events_fired=events,
        wall_s=time.perf_counter() - start,
    )


class SweepRunner:
    """Fans a :class:`ScenarioGrid` across processes and aggregates."""

    def __init__(self, grid: ScenarioGrid, jobs: int | None = 1) -> None:
        """*jobs*: worker processes; 1 runs inline, ``None`` uses the
        machine's CPU count."""
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ConfigError("sweep needs at least one worker process")
        self.grid = grid
        self.jobs = jobs

    def run(self, grid_name: str = "sweep") -> SweepReport:
        """Execute every scenario; returns the aggregated report."""
        specs = self.grid.expand()
        start = time.perf_counter()
        if self.jobs == 1 or len(specs) == 1:
            results = [run_scenario_spec(spec) for spec in specs]
        else:
            # chunksize amortizes IPC for big grids without starving
            # the pool's tail on uneven scenario durations.
            chunksize = max(1, len(specs) // (self.jobs * 4))
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                results = list(
                    pool.map(run_scenario_spec, specs, chunksize=chunksize)
                )
        return SweepReport(
            results=results,
            grid_name=grid_name,
            total_wall_s=time.perf_counter() - start,
            jobs=self.jobs,
        )
