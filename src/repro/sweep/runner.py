"""Deprecated alias module: see :mod:`repro.experiments.runner`."""

from ..experiments.runner import SweepRunner, run_scenario_spec  # noqa: F401
from ..experiments.scenarios import MAX_EVENTS_PER_SCENARIO  # noqa: F401
