"""Deprecated alias module: see :mod:`repro.experiments.report`."""

from ..experiments.report import (  # noqa: F401
    CELL_METRICS,
    ScenarioResult,
    SweepReport,
)
