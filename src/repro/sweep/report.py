"""Sweep aggregation: from many fleet runs to percentile surfaces.

Each scenario reduces to one flat :class:`ScenarioResult` in its worker
process (a :class:`~repro.fleet.report.FleetReport` carries full
per-tick traces — far too heavy to ship back for hundreds of
scenarios).  :class:`SweepReport` then groups results by grid cell and
lays percentile surfaces over the seed axis: the throughput / stall /
power / queue-delay distributions the paper's provisioning sections
argue from.  Rendering reuses the :mod:`repro.analysis.report` table
style, and the whole report round-trips through JSON so sweeps can be
archived and diffed as artifacts.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import asdict, dataclass, field

from ..analysis.report import render_table
from ..common.errors import ConfigError

#: The metrics a cell surface summarizes, in render order.
CELL_METRICS = (
    "aggregate_samples_per_s",
    "mean_slowdown",
    "mean_stall_fraction",
    "p95_queue_delay_s",
    "peak_power_watts",
    "peak_storage_utilization",
)

#: Percentiles of each cell's seed distribution.
SURFACE_PERCENTILES = (50.0, 90.0, 100.0)


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's outcome, flattened for cheap pickling.

    Ratio metrics that need at least one finished job are ``nan`` when
    the horizon cut every job short — ``nan`` survives JSON round-trips
    here (serialized as ``null``) and percentile math skips it.
    """

    name: str
    cell: str
    trace_seed: int
    jobs_submitted: int
    jobs_completed: int
    peak_concurrency: int
    makespan_s: float
    aggregate_samples_per_s: float
    mean_slowdown: float
    mean_stall_fraction: float
    p95_queue_delay_s: float
    mean_storage_utilization: float
    peak_storage_utilization: float
    peak_power_watts: float
    events_fired: int
    wall_s: float

    @classmethod
    def from_fleet_report(
        cls,
        name: str,
        cell: str,
        trace_seed: int,
        report,
        events_fired: int,
        wall_s: float,
    ) -> "ScenarioResult":
        """Reduce a FleetReport (guarding its raising aggregates)."""
        finished = report.finished_outcomes()
        return cls(
            name=name,
            cell=cell,
            trace_seed=trace_seed,
            jobs_submitted=report.jobs_submitted,
            jobs_completed=len(finished),
            peak_concurrency=report.peak_concurrency,
            makespan_s=report.makespan_s,
            aggregate_samples_per_s=(
                report.aggregate_samples_per_s if report.makespan_s > 0 else math.nan
            ),
            mean_slowdown=report.mean_slowdown if finished else math.nan,
            mean_stall_fraction=(
                sum(o.stall_fraction for o in finished) / len(finished)
                if finished
                else math.nan
            ),
            p95_queue_delay_s=(
                report.p95_queue_delay_s if report.jobs_submitted else math.nan
            ),
            mean_storage_utilization=report.mean_storage_utilization,
            peak_storage_utilization=report.peak_storage_utilization,
            peak_power_watts=max(
                (s.power_watts for s in report.samples), default=0.0
            ),
            events_fired=events_fired,
            wall_s=wall_s,
        )


def _percentile(values: list[float], q: float) -> float:
    """Ceiling-index percentile, matching the fleet report's tail
    convention: small populations report their worst value rather than
    interpolating the tail away."""
    if not values:
        return math.nan
    ranked = sorted(values)
    return ranked[math.ceil(q / 100.0 * (len(ranked) - 1))]


@dataclass
class SweepReport:
    """Results of one sweep, plus the aggregation surfaces over them."""

    results: list[ScenarioResult]
    grid_name: str = "sweep"
    total_wall_s: float = 0.0
    jobs: int = 1  # process fan-out the sweep ran with
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Canonical order: aggregation must not depend on completion
        # order across worker processes.
        self.results = sorted(self.results, key=lambda r: r.name)

    # -- aggregation -----------------------------------------------------------

    @property
    def cells(self) -> list[str]:
        """Grid cells (mix/config/faults) in deterministic order."""
        seen: dict[str, None] = {}
        for result in self.results:
            seen.setdefault(result.cell, None)
        return list(seen)

    def cell_results(self, cell: str) -> list[ScenarioResult]:
        """All seeds' results for one grid cell."""
        matches = [r for r in self.results if r.cell == cell]
        if not matches:
            raise ConfigError(f"unknown sweep cell {cell!r}")
        return matches

    def surface(self, metric: str) -> dict[str, dict[str, float]]:
        """Percentiles of *metric* across seeds, per grid cell.

        Returns ``{cell: {"p50": ..., "p90": ..., "p100": ...,
        "mean": ...}}``, skipping ``nan`` observations (scenarios where
        the metric was undefined).
        """
        if metric not in CELL_METRICS:
            raise ConfigError(
                f"unknown surface metric {metric!r}; choose from {CELL_METRICS}"
            )
        surface: dict[str, dict[str, float]] = {}
        for cell in self.cells:
            values = [
                value
                for result in self.cell_results(cell)
                if not math.isnan(value := getattr(result, metric))
            ]
            entry = {
                f"p{q:.0f}": _percentile(values, q) for q in SURFACE_PERCENTILES
            }
            entry["mean"] = (
                sum(values) / len(values) if values else math.nan
            )
            surface[cell] = entry
        return surface

    @property
    def scenarios_per_s(self) -> float:
        """Sweep throughput against wall time (the fan-out payoff)."""
        if self.total_wall_s <= 0:
            raise ConfigError("sweep recorded no wall time")
        return len(self.results) / self.total_wall_s

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> str:
        """The whole report as a stable, diff-friendly JSON document."""
        payload = _null_nans(
            {
                "grid_name": self.grid_name,
                "jobs": self.jobs,
                "total_wall_s": round(self.total_wall_s, 3),
                "scenarios": [asdict(result) for result in self.results],
                "surfaces": {
                    metric: self.surface(metric) for metric in CELL_METRICS
                },
                "extras": self.extras,
            }
        )
        # NaN slots were nulled above; allow_nan=False guards the
        # artifact's strict-JSON promise against future metric fields.
        return json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"

    def write(self, path: str | pathlib.Path) -> pathlib.Path:
        """Persist the JSON artifact; returns the path written."""
        target = pathlib.Path(path)
        target.write_text(self.to_json())
        return target

    @classmethod
    def from_json(cls, text: str) -> "SweepReport":
        """Rebuild a report from :meth:`to_json` output."""
        payload = json.loads(text)
        results = [
            ScenarioResult(
                **{
                    key: (math.nan if value is None else value)
                    for key, value in row.items()
                }
            )
            for row in payload["scenarios"]
        ]
        return cls(
            results=results,
            grid_name=payload.get("grid_name", "sweep"),
            total_wall_s=payload.get("total_wall_s", 0.0),
            jobs=payload.get("jobs", 1),
            extras=payload.get("extras", {}),
        )

    # -- rendering -------------------------------------------------------------

    def render(self, title: str | None = None) -> str:
        """Per-cell percentile table plus the sweep summary block."""
        rows = []
        throughput = self.surface("aggregate_samples_per_s")
        stall = self.surface("mean_stall_fraction")
        delay = self.surface("p95_queue_delay_s")
        power = self.surface("peak_power_watts")
        for cell in self.cells:
            cell_rows = self.cell_results(cell)
            rows.append(
                [
                    cell,
                    len(cell_rows),
                    f"{sum(r.jobs_completed for r in cell_rows)}"
                    f"/{sum(r.jobs_submitted for r in cell_rows)}",
                    _fmt(throughput[cell]["p50"], 1e6, "{:.3f}"),
                    _fmt(throughput[cell]["p90"], 1e6, "{:.3f}"),
                    _fmt(stall[cell]["p90"], 0.01, "{:.0f}%"),
                    _fmt(delay[cell]["p90"], 1.0, "{:.0f}"),
                    _fmt(power[cell]["p100"], 1e3, "{:.0f}"),
                ]
            )
        table = render_table(
            [
                "cell",
                "seeds",
                "done",
                "p50 Msamp/s",
                "p90 Msamp/s",
                "p90 stall",
                "p90 queue_s",
                "peak kW",
            ],
            rows,
            title=title or f"Scenario sweep: {self.grid_name}",
        )
        summary = [
            f"scenarios: {len(self.results)} across {len(self.cells)} cells",
        ]
        if self.total_wall_s > 0:
            summary.append(
                f"wall time: {self.total_wall_s:.1f} s with {self.jobs} "
                f"process(es) — {self.scenarios_per_s:.2f} scenarios/s"
            )
        return table + "\n" + "\n".join(summary)


def _null_nans(value):
    if isinstance(value, float) and math.isnan(value):
        return None
    if isinstance(value, dict):
        return {key: _null_nans(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_null_nans(item) for item in value]
    return value


def _fmt(value: float, scale: float, pattern: str) -> str:
    """Render one surface entry, dashing out undefined cells."""
    if math.isnan(value):
        return "-"
    return pattern.format(value / scale)
