"""Parallel scenario sweeps over the fleet simulation plane.

One fleet run answers one question; the paper's provisioning arguments
(Sections 4 and 7) are *distributions* — how do tail queue delays,
stall fractions, and power peaks move across seeds, workload mixes,
fault storms, and fabric shapes?  This package turns the fleet
simulator into that instrument:

* :class:`ScenarioGrid` (:mod:`grid`) expands seeds × mixes × configs ×
  fault schedules into picklable :class:`ScenarioSpec`\\ s with
  deterministic per-scenario seeding;
* :class:`SweepRunner` (:mod:`runner`) fans the specs across worker
  processes (or runs them inline) and reduces each run to a compact
  :class:`ScenarioResult`;
* :class:`SweepReport` (:mod:`report`) aggregates results into
  percentile surfaces per grid cell and serializes to/from JSON.

``python -m repro.sweep`` is the CLI face: grid spec via JSON or
flags, ``--jobs N`` process fan-out, a ``SweepReport`` JSON artifact
out.
"""

from .grid import ScenarioGrid, ScenarioSpec, grid_from_json
from .report import CELL_METRICS, ScenarioResult, SweepReport
from .runner import SweepRunner, run_scenario_spec

__all__ = [
    "CELL_METRICS",
    "ScenarioGrid",
    "ScenarioResult",
    "ScenarioSpec",
    "SweepReport",
    "SweepRunner",
    "grid_from_json",
    "run_scenario_spec",
]
