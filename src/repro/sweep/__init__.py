"""Deprecated alias of :mod:`repro.experiments` (the sweep half).

The sweep plane grew into the unified experiment plane; everything
this package exported lives on under :mod:`repro.experiments` with the
same names and behavior (``ScenarioSpec`` is now spelled
:class:`~repro.experiments.scenarios.FleetRegionScenario`; the old
name remains an alias).  Importing :mod:`repro.sweep` keeps working —
with this one :class:`DeprecationWarning` — so archived scripts and
notebooks don't break mid-flight.
"""

import warnings

warnings.warn(
    "repro.sweep is deprecated; use repro.experiments "
    "(python -m repro.experiments sweep replaces python -m repro.sweep)",
    DeprecationWarning,
    stacklevel=2,
)

from ..experiments.grid import ScenarioGrid, ScenarioSpec, grid_from_json
from ..experiments.report import CELL_METRICS, ScenarioResult, SweepReport
from ..experiments.runner import SweepRunner, run_scenario_spec

__all__ = [
    "CELL_METRICS",
    "ScenarioGrid",
    "ScenarioResult",
    "ScenarioSpec",
    "SweepReport",
    "SweepRunner",
    "grid_from_json",
    "run_scenario_spec",
]
