"""Deprecated alias module: see :mod:`repro.experiments.grid`."""

from ..experiments.grid import (  # noqa: F401
    ScenarioGrid,
    ScenarioSpec,
    grid_from_json,
    quick_grid,
)
from ..experiments.scenarios import FLEET_FAULT_KINDS  # noqa: F401
