"""Scenario grids: the cartesian space a sweep explores.

A grid names its axes — seeds, workload mixes, fleet configs, fault
schedules — and :meth:`ScenarioGrid.expand` flattens them into one
:class:`ScenarioSpec` per cell×seed.  Specs are frozen dataclasses
built from the library's own frozen config types, so they pickle
cleanly across process boundaries and hash stably into per-scenario
seeds.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, fields, replace

from ..chaos.faults import FaultEvent, FaultKind
from ..common.errors import ConfigError
from ..common.hashing import stable_hash
from ..fleet.allocator import PoolConfig
from ..fleet.broker import StorageFabric
from ..fleet.jobs import FleetMix
from ..fleet.simulator import FleetConfig

#: Fault kinds a fleet-plane scenario may inject (the simulator's
#: public chaos hooks); per-session kinds belong to ChaosRunner.
FLEET_FAULT_KINDS = {
    FaultKind.WORKER_CRASH,
    FaultKind.DEGRADE_STORAGE,
    FaultKind.RESTORE_STORAGE,
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-resolved, picklable cell of a sweep.

    ``trace_seed`` drives the job-arrival trace; ``fault_seed`` (derived
    stably from the scenario name and trace seed) varies fault victim
    *targeting* only — the runner rotates the round-robin victim order
    by it — so two cells sharing a mix and seed replay the *same*
    arrivals under different fault storms: paired comparisons, not
    noise.
    """

    name: str
    trace_seed: int
    mix: FleetMix
    config: FleetConfig
    duration_s: float
    horizon_s: float | None = None
    faults: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigError("scenario duration must be positive")
        unsupported = {f.kind for f in self.faults} - FLEET_FAULT_KINDS
        if unsupported:
            raise ConfigError(
                "fleet scenarios support "
                f"{sorted(k.value for k in FLEET_FAULT_KINDS)}; "
                f"got {sorted(k.value for k in unsupported)}"
            )

    @property
    def fault_seed(self) -> int:
        """Deterministic victim-selection seed for this scenario."""
        return stable_hash(self.name, self.trace_seed) & 0x7FFFFFFF

    @property
    def cell(self) -> str:
        """The grid cell (scenario name without the seed axis)."""
        return self.name.rsplit("/seed", 1)[0]


@dataclass(frozen=True)
class ScenarioGrid:
    """Axes of a sweep: seeds × mixes × configs × fault schedules.

    Each non-seed axis is a tuple of ``(name, value)`` pairs; the grid
    expands to ``len(mixes) * len(configs) * len(faults) * len(seeds)``
    scenarios named ``mix/config/faults/seedN``.
    """

    seeds: tuple[int, ...]
    mixes: tuple[tuple[str, FleetMix], ...]
    configs: tuple[tuple[str, FleetConfig], ...]
    faults: tuple[tuple[str, tuple[FaultEvent, ...]], ...] = (("none", ()),)
    duration_s: float = 4.0 * 3600
    horizon_s: float | None = None

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ConfigError("grid needs at least one seed")
        if not self.mixes or not self.configs or not self.faults:
            raise ConfigError("every grid axis needs at least one entry")
        for axis in (self.mixes, self.configs, self.faults):
            names = [name for name, _ in axis]
            if len(set(names)) != len(names):
                raise ConfigError(f"duplicate axis names: {sorted(names)}")
        if self.duration_s <= 0:
            raise ConfigError("trace duration must be positive")

    def __len__(self) -> int:
        return (
            len(self.mixes) * len(self.configs) * len(self.faults) * len(self.seeds)
        )

    def expand(self) -> list[ScenarioSpec]:
        """All scenario specs, in deterministic axis-major order."""
        specs: list[ScenarioSpec] = []
        for mix_name, mix in self.mixes:
            for config_name, config in self.configs:
                for fault_name, events in self.faults:
                    for seed in self.seeds:
                        specs.append(
                            ScenarioSpec(
                                name=(
                                    f"{mix_name}/{config_name}/"
                                    f"{fault_name}/seed{seed}"
                                ),
                                trace_seed=seed,
                                mix=mix,
                                config=config,
                                duration_s=self.duration_s,
                                horizon_s=self.horizon_s,
                                faults=events,
                            )
                        )
        return specs


# -- JSON grid specs -----------------------------------------------------------


def _mix_from_overrides(overrides: dict) -> FleetMix:
    """A FleetMix from default values plus JSON field overrides."""
    valid = {f.name for f in fields(FleetMix)} - {"models"}
    unknown = set(overrides) - valid
    if unknown:
        raise ConfigError(f"unknown FleetMix fields: {sorted(unknown)}")
    coerced = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in overrides.items()
    }
    return replace(FleetMix(), **coerced)


def _config_from_spec(spec: dict) -> FleetConfig:
    """A FleetConfig from the flat JSON shorthand.

    Recognized keys: ``n_hdd_nodes``, ``n_ssd_cache_nodes`` (fabric),
    ``n_trainer_nodes``, ``max_workers`` (pool), ``power_budget_watts``,
    ``tick_s``, ``control_period_s``, ``buffer_capacity_s``.
    """
    known = {
        "n_hdd_nodes",
        "n_ssd_cache_nodes",
        "n_trainer_nodes",
        "max_workers",
        "power_budget_watts",
        "tick_s",
        "control_period_s",
        "buffer_capacity_s",
    }
    unknown = set(spec) - known
    if unknown:
        raise ConfigError(f"unknown fleet-config fields: {sorted(unknown)}")
    fabric = StorageFabric(
        n_hdd_nodes=spec.get("n_hdd_nodes", 40),
        n_ssd_cache_nodes=spec.get("n_ssd_cache_nodes", 4),
    )
    extras = {
        key: spec[key]
        for key in ("power_budget_watts", "tick_s", "control_period_s", "buffer_capacity_s")
        if key in spec
    }
    return FleetConfig(
        fabric=fabric,
        n_trainer_nodes=spec.get("n_trainer_nodes", 32),
        pool=PoolConfig(max_workers=spec.get("max_workers", 2_000)),
        **extras,
    )


def _fault_events(entries: list[dict]) -> tuple[FaultEvent, ...]:
    """FaultEvents from ``{"kind", "at_s", "magnitude"}`` JSON rows."""
    events = []
    for entry in entries:
        events.append(
            FaultEvent(
                round_index=int(entry["at_s"]),
                kind=FaultKind(entry["kind"]),
                magnitude=float(entry.get("magnitude", 1.0)),
            )
        )
    return tuple(events)


def grid_from_json(source: str | pathlib.Path | dict) -> ScenarioGrid:
    """Parse a grid from a JSON file path, JSON text, or parsed dict.

    Schema (all sections optional except ``seeds``)::

        {
          "seeds": [0, 1, 2],
          "duration_s": 14400,
          "horizon_s": null,
          "mixes": {"default": {}, "busy": {"exploratory_per_day": 96}},
          "configs": {"base": {"n_hdd_nodes": 40, "n_trainer_nodes": 32}},
          "faults": {"none": [],
                     "storm": [{"kind": "worker_crash", "at_s": 3600,
                                "magnitude": 4}]}
        }
    """
    if isinstance(source, dict):
        payload = source
    else:
        text = str(source)
        if text.lstrip().startswith("{"):
            payload = json.loads(text)
        else:
            payload = json.loads(pathlib.Path(source).read_text())
    if "seeds" not in payload or not payload["seeds"]:
        raise ConfigError("grid spec needs a non-empty 'seeds' list")
    mixes = payload.get("mixes") or {"default": {}}
    configs = payload.get("configs") or {"base": {}}
    faults = payload.get("faults") or {"none": []}
    return ScenarioGrid(
        seeds=tuple(int(s) for s in payload["seeds"]),
        mixes=tuple(
            (name, _mix_from_overrides(overrides)) for name, overrides in mixes.items()
        ),
        configs=tuple(
            (name, _config_from_spec(spec)) for name, spec in configs.items()
        ),
        faults=tuple(
            (name, _fault_events(entries)) for name, entries in faults.items()
        ),
        duration_s=float(payload.get("duration_s", 4.0 * 3600)),
        horizon_s=(
            float(payload["horizon_s"])
            if payload.get("horizon_s") is not None
            else None
        ),
    )
