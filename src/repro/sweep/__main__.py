"""``python -m repro.sweep`` — deprecated alias.

Delegates to ``python -m repro.experiments sweep`` with the same flags
(the package import above already emitted the deprecation warning).
"""

from __future__ import annotations

import sys

from ..experiments.__main__ import main as _experiments_main


def quick_grid(seeds: tuple[int, ...]):
    """Back-compat re-export (moved to :mod:`repro.experiments.grid`)."""
    from ..experiments.grid import quick_grid as _quick_grid

    return _quick_grid(seeds)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else list(argv)
    return _experiments_main(["sweep", *args])


if __name__ == "__main__":
    sys.exit(main())
