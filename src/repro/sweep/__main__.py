"""``python -m repro.sweep`` — run a scenario grid and write the artifact.

Examples::

    # A quick built-in grid: 5 seeds x 2 mixes, 4 processes
    python -m repro.sweep --quick --jobs 4 --out sweep.json

    # A grid spec from JSON (see repro.sweep.grid.grid_from_json)
    python -m repro.sweep --grid grid.json --jobs 8 --out sweep.json

    # Override the seed axis from the command line
    python -m repro.sweep --grid grid.json --seeds 0,1,2,3
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from .grid import ScenarioGrid, grid_from_json
from .runner import SweepRunner


def quick_grid(seeds: tuple[int, ...]) -> ScenarioGrid:
    """The built-in smoke grid: small region, two mixes, one fault storm."""
    from ..chaos.faults import FaultEvent, FaultKind
    from ..fleet.jobs import FleetMix

    return grid_from_json(
        {
            "seeds": list(seeds),
            "duration_s": 2.0 * 3600,
            "mixes": {
                "default": {},
                "busy": {"exploratory_per_day": 96.0, "burst_probability": 0.4},
            },
            "configs": {"base": {"n_hdd_nodes": 40, "n_ssd_cache_nodes": 4}},
            "faults": {
                "none": [],
                "storm": [
                    {"kind": "worker_crash", "at_s": 1800, "magnitude": 4},
                    {"kind": "degrade_storage", "at_s": 3600, "magnitude": 0.5},
                    {"kind": "restore_storage", "at_s": 5400},
                ],
            },
        }
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Fan a fleet-scenario grid across processes.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--grid", help="grid spec: a JSON file path or inline JSON")
    source.add_argument(
        "--quick", action="store_true", help="run the built-in smoke grid"
    )
    parser.add_argument(
        "--seeds",
        help="comma-separated seed list overriding the grid's seed axis",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (0 = one per CPU core; default 1, inline)",
    )
    parser.add_argument(
        "--name", default="sweep", help="grid name recorded in the artifact"
    )
    parser.add_argument("--out", help="write the SweepReport JSON here")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the rendered table"
    )
    args = parser.parse_args(argv)

    seeds = (
        tuple(int(part) for part in args.seeds.split(",")) if args.seeds else None
    )
    if args.quick:
        grid = quick_grid(seeds or (0, 1, 2, 3, 4))
    else:
        grid = grid_from_json(args.grid)
        if seeds:
            grid = dataclasses.replace(grid, seeds=seeds)

    runner = SweepRunner(grid, jobs=args.jobs or None)
    report = runner.run(grid_name=args.name)
    if not args.quiet:
        print(report.render())
    if args.out:
        target = report.write(args.out)
        print(f"sweep artifact → {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
