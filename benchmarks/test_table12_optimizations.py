"""Table 12: DPP and storage throughput under progressive optimizations.

Paper:
  DPP     1.00 / 2.00 / 2.30 / 2.94 / 2.94 / 2.94 / 2.94
  Storage 1.00 / 0.03 / 0.03 / 0.03 / 0.99 / 1.84 / 2.41
for Baseline / +FF / +FM / +LO / +CR / +FR / +LS.

Every stage flips a real code path or layout knob; the dataset is a
miniature RM1 table large enough that per-stripe over-read costs more
disk time than a seek — the regime where FR and LS pay off.
"""

import pytest

from repro.analysis import render_table, run_ablation
from repro.workloads import RM1, build_mini_dataset

from ._util import save_result

PAPER_DPP = {"Baseline": 1.00, "+FF": 2.00, "+FM": 2.30, "+LO": 2.94,
             "+CR": 2.94, "+FR": 2.94, "+LS": 2.94}
PAPER_STORAGE = {"Baseline": 1.00, "+FF": 0.03, "+FM": 0.03, "+LO": 0.03,
                 "+CR": 0.99, "+FR": 1.84, "+LS": 2.41}


def run_table12():
    dataset = build_mini_dataset(RM1, ["p0"], 6_000, seed=11)
    return run_ablation(dataset)


def test_table12_optimizations(benchmark):
    result = benchmark.pedantic(run_table12, rounds=1, iterations=1)
    dpp = result.normalized_dpp()
    storage = result.normalized_storage()
    rows = [
        [name, dpp[name], PAPER_DPP[name], storage[name], PAPER_STORAGE[name]]
        for name in PAPER_DPP
    ]
    save_result(
        "table12_optimizations",
        render_table(
            ["stage", "DPP thpt (meas.)", "DPP (paper)",
             "storage thpt (meas.)", "storage (paper)"],
            rows,
            title="Table 12 — progressive DSI optimizations (normalized)",
        ),
    )
    # DPP side: FF ~2x, FM adds ~15%, LO adds ~28%, reads don't change CPU.
    assert dpp["+FF"] == pytest.approx(2.0, abs=0.35)
    assert 1.05 < dpp["+FM"] / dpp["+FF"] < 1.35
    assert 1.15 < dpp["+LO"] / dpp["+FM"] < 1.40
    assert dpp["+LS"] == pytest.approx(dpp["+LO"], rel=0.05)

    # Storage side: FF craters throughput; CR restores ~baseline;
    # FR and LS push beyond it.
    assert storage["+FF"] < 0.35
    assert storage["+CR"] == pytest.approx(1.0, abs=0.25)
    assert storage["+FR"] > 1.4 * storage["+CR"]
    assert storage["+LS"] > storage["+FR"]
    assert storage["+LS"] > 2.0

    # End-to-end gains in the paper's direction (2.94x / 2.41x).
    assert dpp["+LS"] > 2.5
