"""Benchmark helpers: result artifacts shared by every bench module.

Each benchmark regenerates one paper table/figure, prints it, and saves
the rendered text under ``benchmarks/results/`` so EXPERIMENTS.md can
cite measured numbers.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Print and persist one experiment's rendered output."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
