"""Table 9: DPP worker throughput on C-v1 and workers per trainer node.

Paper: 11.623 / 7.995 / 36.921 kQPS and 24.16 / 9.44 / 55.22 workers
per trainer for RM1/RM2/RM3, with distinct bottlenecks per model.
"""

from repro.analysis import render_table, table9_rows
from repro.workloads import ALL_MODELS

from ._util import save_result

PAPER_BOTTLENECKS = {"RM1": ("cpu", "mem_bw"), "RM2": ("nic_rx",),
                     "RM3": ("memory_capacity",)}


def run_table9():
    return table9_rows()


def test_table9_dpp_throughput(benchmark):
    rows = benchmark(run_table9)
    table = []
    for row, model in zip(rows, ALL_MODELS):
        table.append(
            [
                row.model_name,
                row.kqps,
                model.dpp.kqps,
                row.storage_rx_gbs,
                row.transform_rx_gbs,
                row.transform_tx_gbs,
                row.workers_per_trainer,
                model.dpp.workers_per_trainer,
                row.bottleneck,
            ]
        )
    save_result(
        "table9_dpp_throughput",
        render_table(
            ["model", "kQPS (meas.)", "kQPS (paper)", "storage RX GB/s",
             "xform RX GB/s", "xform TX GB/s", "workers/trainer (meas.)",
             "workers/trainer (paper)", "bottleneck"],
            table,
            title="Table 9 — DPP worker throughput on C-v1",
        ),
    )
    for row, model in zip(rows, ALL_MODELS):
        assert abs(row.kqps - model.dpp.kqps) / model.dpp.kqps < 0.08
        assert (
            abs(row.workers_per_trainer - model.dpp.workers_per_trainer)
            / model.dpp.workers_per_trainer
            < 0.08
        )
        assert row.bottleneck in PAPER_BOTTLENECKS[row.model_name]
    # The paper's range: between ~9 and ~55 workers per trainer node.
    counts = [row.workers_per_trainer for row in rows]
    assert min(counts) < 10 and max(counts) > 50
