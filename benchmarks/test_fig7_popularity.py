"""Figure 7: CDF of popular bytes vs absorbed read throughput.

Paper: serving 80% of traffic needs the most popular 39 / 37 / 18
percent of RM1 / RM2 / RM3's bytes.
"""

from repro.analysis import render_table, simulate_month_of_jobs
from repro.workloads import ALL_MODELS

from ._util import save_result


def run_figure7():
    return {model.name: simulate_month_of_jobs(model, seed=7) for model in ALL_MODELS}


def test_fig7_popularity_cdf(benchmark):
    studies = benchmark(run_figure7)
    rows = []
    for model in ALL_MODELS:
        study = studies[model.name]
        measured = study.bytes_fraction_for_traffic(0.8)
        rows.append(
            [
                model.name,
                100 * measured,
                100 * model.popularity_bytes_for_80pct,
                100 * study.bytes_fraction_for_traffic(0.5),
                100 * study.bytes_fraction_for_traffic(0.95),
            ]
        )
    save_result(
        "fig7_popularity",
        render_table(
            ["model", "bytes for 80% (meas.)", "bytes for 80% (paper)",
             "bytes for 50%", "bytes for 95%"],
            rows,
            title="Figure 7 — popular bytes vs throughput absorbed",
        ),
    )
    for model in ALL_MODELS:
        measured = studies[model.name].bytes_fraction_for_traffic(0.8)
        assert abs(measured - model.popularity_bytes_for_80pct) < 0.06
    # RM3 exhibits the tightest reuse (its jobs barely vary).
    assert (
        studies["RM3"].bytes_fraction_for_traffic(0.8)
        < studies["RM2"].bytes_fraction_for_traffic(0.8)
    )
