"""Table 11: the preprocessing operator suite and the Section 6.4
cycle split across op classes (feature generation ~75%, sparse
normalization ~20%, dense normalization ~5%).
"""

import numpy as np

from repro.analysis import render_table
from repro.transforms import (
    Bucketize,
    FeatureBatch,
    FirstX,
    Logit,
    NGram,
    OpClass,
    SigridHash,
    TransformDag,
    execute_with_cost,
    registered_ops,
)
from repro.transforms.batch import DenseColumn, SparseColumn

from ._util import save_result

TABLE11_OPS = {
    "Cartesian", "Bucketize", "ComputeScore", "Enumerate", "PositiveModulus",
    "IdListTransform", "BoxCox", "Logit", "MapId", "FirstX", "GetLocalHour",
    "SigridHash", "NGram", "Onehot", "Clamp", "Sampling",
}


def production_mix_batch(n_rows=512, seed=0):
    rng = np.random.default_rng(seed)
    batch = FeatureBatch(labels=np.zeros(n_rows, dtype=np.float32))
    batch.add_column(
        1, DenseColumn(rng.random(n_rows).astype(np.float32),
                       np.ones(n_rows, dtype=bool))
    )
    lists = [list(rng.integers(0, 10_000, size=rng.integers(1, 30)))
             for _ in range(n_rows)]
    batch.add_column(2, SparseColumn.from_lists(lists))
    return batch


def production_mix_dag():
    """A production-shaped mix: per-feature normalization plus feature
    generation chains (Section 6.4's dominant class)."""
    dag = TransformDag()
    dag.add(100, Logit(1))
    dag.add(101, FirstX(2, 16))
    dag.add(102, SigridHash(101, 1_000_000))
    dag.add(103, Bucketize(1, [0.25, 0.5, 0.75]))
    dag.add(104, NGram([2, 2], n=2))
    dag.add(105, SigridHash(104, 1_000_000))
    dag.add(106, NGram([103, 101], n=2))
    dag.add(107, SigridHash(106, 1_000_000))
    return dag


def run_table11():
    batch = production_mix_batch()
    return execute_with_cost(production_mix_dag(), batch)


def test_table11_transform_ops(benchmark):
    report = benchmark.pedantic(run_table11, rounds=1, iterations=1)
    assert set(registered_ops()) == TABLE11_OPS

    shares = report.class_shares()
    rows = [
        ["feature generation", 100 * shares[OpClass.FEATURE_GENERATION], 75],
        ["sparse normalization", 100 * shares[OpClass.SPARSE_NORMALIZATION], 20],
        ["dense normalization", 100 * shares[OpClass.DENSE_NORMALIZATION], 5],
    ]
    save_result(
        "table11_transform_ops",
        render_table(
            ["op class", "% cycles (meas.)", "% cycles (paper)"],
            rows,
            title=(
                "Table 11 — transform op suite "
                f"({len(TABLE11_OPS)} ops implemented) and §6.4 cycle split"
            ),
        ),
    )
    # Section 6.4's ordering: generation >> sparse norm >> dense norm.
    assert shares[OpClass.FEATURE_GENERATION] > 0.55
    assert shares[OpClass.SPARSE_NORMALIZATION] > shares[OpClass.DENSE_NORMALIZATION]
    assert shares[OpClass.DENSE_NORMALIZATION] < 0.10
