"""Ablation: auto-scaling versus static provisioning (§3.2.1).

DPP's design goal is "eliminating data stalls with minimal DPP resource
requirements".  This bench runs the timed closed-loop simulation under
four policies and compares stall time against worker-hours spent.
"""

from repro.analysis import render_table
from repro.dpp import AutoscalerConfig, SimulationConfig, TimedDppSimulation

from ._util import save_result

DURATION_S = 1_200.0


def run_policy(initial_workers, autoscale):
    config = SimulationConfig(
        worker_batches_per_s=10.0,
        trainer_batches_per_s=50.0,  # exact need: 5 workers
        initial_workers=initial_workers,
        worker_spinup_s=30.0,
        autoscaler=AutoscalerConfig(
            scale_up_step=2,
            max_workers=32 if autoscale else initial_workers,
            min_workers=1,
        ),
    )
    result = TimedDppSimulation(config).run(DURATION_S)
    worker_hours = sum(s.live_workers for s in result.samples) / 3_600.0
    return result, worker_hours


def run_ablation():
    return {
        "static undersized (3)": run_policy(3, autoscale=False),
        "static worst-case (12)": run_policy(12, autoscale=False),
        "autoscaled from 1": run_policy(1, autoscale=True),
        "autoscaled from 12": run_policy(12, autoscale=True),
    }


def test_ablation_autoscaler(benchmark):
    outcomes = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for name, (result, worker_hours) in outcomes.items():
        rows.append(
            [
                name,
                f"{100 * result.stall_fraction:.1f}%",
                f"{100 * result.stall_fraction_after(300.0):.1f}%",
                result.peak_workers,
                result.final_workers,
                f"{worker_hours:.2f}",
            ]
        )
    save_result(
        "ablation_autoscaler",
        render_table(
            ["policy", "stall (all)", "stall (steady)", "peak workers",
             "final workers", "worker-hours"],
            rows,
            title="Ablation — autoscaling vs static provisioning (need = 5 workers)",
        ),
    )
    static_under = outcomes["static undersized (3)"][0]
    static_over, over_hours = outcomes["static worst-case (12)"]
    scaled, scaled_hours = outcomes["autoscaled from 1"][0], outcomes["autoscaled from 1"][1]

    # Undersized static fleets stall forever.
    assert static_under.stall_fraction_after(300.0) > 0.9
    # Worst-case static never stalls but burns capacity.
    assert static_over.stall_fraction == 0.0
    # Autoscaling reaches stall-free steady state from one worker...
    assert scaled.stall_fraction_after(600.0) == 0.0
    # ...while spending fewer worker-hours than worst-case static.
    assert scaled_hours < over_hours
    # And an over-provisioned start drains down toward the need.
    drained = outcomes["autoscaled from 12"][0]
    assert drained.final_workers < 12
