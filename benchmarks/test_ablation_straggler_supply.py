"""Ablation: supply headroom for synchronous data-parallel jobs (§2).

Synchronous SGD gates every iteration on the slowest trainer, so
supply == demand still stalls; this bench quantifies the headroom DPP
must provision at different job widths — the systems argument for the
controller's buffered-tensor target rather than exact rate matching.
"""

from repro.analysis import render_table
from repro.trainer import ClusterConfig, simulate_cluster, supply_for_efficiency

from ._util import save_result

WIDTHS = [4, 16, 64]


def run_study():
    outcomes = {}
    for width in WIDTHS:
        nominal = width / 0.06  # 1 batch per 60 ms iteration per trainer
        config = ClusterConfig(
            n_trainers=width,
            compute_time_s=0.05,
            sync_time_s=0.01,
            batches_per_s_supplied=nominal,
        )
        at_nominal = simulate_cluster(config, seed=width)
        headroom = supply_for_efficiency(config, target_efficiency=0.95, seed=width)
        outcomes[width] = (at_nominal, headroom)
    return outcomes


def test_ablation_straggler_supply(benchmark):
    outcomes = benchmark.pedantic(run_study, rounds=1, iterations=1)
    rows = []
    for width, (at_nominal, headroom) in outcomes.items():
        rows.append(
            [
                width,
                f"{100 * at_nominal.efficiency:.0f}%",
                f"{100 * at_nominal.stall_fraction:.0f}%",
                f"{headroom:.2f}x",
            ]
        )
    save_result(
        "ablation_straggler_supply",
        render_table(
            ["trainers", "efficiency @ nominal supply", "stall @ nominal",
             "supply for 95% efficiency"],
            rows,
            title="Ablation — synchronous-SGD supply headroom vs job width",
        ),
    )
    # Nominal supply always stalls a synchronous job...
    for _, (at_nominal, _) in outcomes.items():
        assert at_nominal.stall_fraction > 0.25
    # ...and wider jobs need more headroom (max of more stragglers).
    headrooms = [outcomes[w][1] for w in WIDTHS]
    assert headrooms[0] < headrooms[-1]
    assert all(h > 1.2 for h in headrooms)
