"""Ablation: regional capacity versus model-release latency (§4.2).

Combo jobs sit on the release critical path, so under-provisioned
regions stretch every release cycle.  Sweeps regional trainer capacity
against one RM1 combo window and reports queueing delay, makespan, and
utilization — the provisioning frontier datacenter architects walk.
"""

from repro.analysis import render_table
from repro.cluster import JobKind, admit_jobs, capacity_for_delay, generate_release_iteration

from ._util import save_result

CAPACITIES = [48, 96, 192, 384, 768]


def run_sweep():
    combos = generate_release_iteration("RM1", 0.0, seed=10).jobs_of_kind(
        JobKind.COMBO
    )
    reports = {capacity: admit_jobs(combos, capacity) for capacity in CAPACITIES}
    frontier = capacity_for_delay(combos, max_mean_delay_days=0.5)
    return combos, reports, frontier


def test_ablation_combo_capacity(benchmark):
    combos, reports, frontier = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for capacity, report in reports.items():
        rows.append(
            [
                capacity,
                f"{report.mean_queue_delay_days:.2f}",
                f"{report.p95_queue_delay_days:.2f}",
                f"{report.makespan_days:.1f}",
                f"{100 * report.utilization():.0f}%",
            ]
        )
    rows.append([f"{frontier:.0f} (frontier)", "<= 0.50", "-", "-", "-"])
    save_result(
        "ablation_combo_capacity",
        render_table(
            ["capacity (nodes)", "mean delay (days)", "p95 delay (days)",
             "makespan (days)", "utilization"],
            rows,
            title="Ablation — regional capacity vs RM1 combo-window release latency",
        ),
    )
    delays = [reports[c].mean_queue_delay_days for c in CAPACITIES]
    # Delay falls monotonically with capacity and hits ~zero at the top.
    assert all(b <= a + 1e-9 for a, b in zip(delays, delays[1:]))
    assert delays[0] > 1.0
    assert delays[-1] < 0.1
    # Utilization falls as capacity is provisioned toward peak — the
    # cost of peak provisioning the paper accepts for release latency.
    utils = [reports[c].utilization() for c in CAPACITIES]
    assert utils[0] > utils[-1]
    # The frontier search finds a capacity between the sweep's extremes.
    assert CAPACITIES[0] < frontier < CAPACITIES[-1]
