"""Figure 1: storage / preprocessing / training power split per model.

Paper: DLRMs exhibit diverse DSI resource requirements; storage plus
online preprocessing can consume more power than the GPU trainers.
"""

from repro.analysis import render_table
from repro.cluster import power_breakdown
from repro.workloads import ALL_MODELS

from ._util import save_result


def run_figure1():
    return [power_breakdown(model, n_trainers=16) for model in ALL_MODELS]


def test_fig1_power_split(benchmark):
    breakdowns = benchmark(run_figure1)
    rows = []
    for breakdown in breakdowns:
        shares = breakdown.shares()
        rows.append(
            [
                breakdown.model.name,
                100 * shares["storage"],
                100 * shares["preprocessing"],
                100 * shares["training"],
                100 * breakdown.dsi_share,
            ]
        )
    save_result(
        "fig1_power",
        render_table(
            ["model", "storage %", "preproc %", "training %", "DSI %"],
            rows,
            title="Figure 1 — power split per model (line at 50%)",
        ),
    )
    dsi_shares = [breakdown.dsi_share for breakdown in breakdowns]
    # The paper's two claims: diversity across models, and DSI
    # exceeding training power for some models.
    assert max(dsi_shares) > 0.5
    assert min(dsi_shares) < 0.5
    assert max(dsi_shares) - min(dsi_shares) > 0.2
