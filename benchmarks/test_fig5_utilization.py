"""Figure 5: normalized daily peak compute over one year of training.

Paper: distinct utilization peaks correspond to overlapping combo
windows; datacenters must be provisioned for those peaks.
"""

import numpy as np

from repro.analysis import render_table
from repro.cluster import ModelCadence, peak_to_median_ratio, simulate_year

from ._util import save_result


def run_figure5():
    cadences = [
        ModelCadence(f"model-{i}", iteration_period_days=42.0,
                     phase_days=(i % 3) * 3.0)
        for i in range(10)
    ]
    return simulate_year(cadences, days=365, seed=5)


def test_fig5_yearly_utilization(benchmark):
    daily, jobs = benchmark(run_figure5)
    normalized = daily / daily.max()
    rows = [
        ["days simulated", len(daily)],
        ["jobs generated", len(jobs)],
        ["median demand (norm.)", float(np.median(normalized))],
        ["p95 demand (norm.)", float(np.percentile(normalized, 95))],
        ["peak / median", peak_to_median_ratio(daily)],
        ["days above 90% of peak", int((normalized > 0.9).sum())],
    ]
    save_result(
        "fig5_utilization",
        render_table(["metric", "value"], rows,
                     title="Figure 5 — one year of collaborative training demand"),
    )
    # Peaks are distinct: demand spends few days near peak but the
    # peak clearly exceeds typical demand.
    assert peak_to_median_ratio(daily) > 1.25
    assert (normalized > 0.9).sum() < len(daily) * 0.2
