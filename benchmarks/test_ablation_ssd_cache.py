"""Ablation: SSD feature-cache sizing against Figure 7's skew (§7.2).

"Placing commonly-used features on SSD-based caches" — the gain
depends entirely on how much of the popularity curve the cache
capacity covers.  Sweeps cache size under an RM1-skewed stream
workload and reports byte hit rates and delivered-throughput gains.
"""

import numpy as np

from repro.analysis import render_table, simulate_month_of_jobs
from repro.tectonic import FeatureCache, StreamKey
from repro.workloads import RM1

from ._util import save_result

N_STREAMS = 400
STREAM_BYTES = 20_000
N_READS = 20_000


def stream_weights(seed=8):
    """Per-stream read probabilities shaped like RM1's Figure 7 curve."""
    study = simulate_month_of_jobs(RM1, n_features=N_STREAMS, seed=seed)
    # Convert the cumulative curve back to per-item weights.
    ys = np.array([p.y for p in study.curve])
    weights = np.diff(np.concatenate([[0.0], ys]))
    weights = np.clip(weights, 1e-9, None)
    return weights / weights.sum()


def run_sweep():
    rng = np.random.default_rng(9)
    weights = stream_weights()
    keys = [StreamKey(f"f{i % 8}", i * STREAM_BYTES, STREAM_BYTES)
            for i in range(N_STREAMS)]
    draws = rng.choice(N_STREAMS, size=N_READS, p=weights)
    outcomes = {}
    for fraction in (0.05, 0.15, 0.39, 0.70):
        capacity = int(fraction * N_STREAMS * STREAM_BYTES)
        cache = FeatureCache(capacity_bytes=capacity, admission_threshold=1)
        for i in draws:
            cache.read(keys[int(i)])
        outcomes[fraction] = cache
    return outcomes


def test_ablation_ssd_cache(benchmark):
    outcomes = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for fraction, cache in outcomes.items():
        rows.append(
            [
                f"{100 * fraction:.0f}%",
                f"{100 * cache.stats.byte_hit_rate:.1f}%",
                f"{cache.speedup_vs_hdd():.2f}x",
                cache.stats.evictions,
            ]
        )
    save_result(
        "ablation_ssd_cache",
        render_table(
            ["cache size (% of bytes)", "byte hit rate", "throughput vs HDD",
             "evictions"],
            rows,
            title="Ablation — SSD feature cache sizing under RM1's popularity skew",
        ),
    )
    hit_rates = [cache.stats.byte_hit_rate for cache in outcomes.values()]
    # Hit rate grows monotonically with capacity...
    assert hit_rates == sorted(hit_rates)
    # ...and the Figure-7 operating point (39% of bytes) already
    # absorbs the large majority of traffic.
    assert outcomes[0.39].stats.byte_hit_rate > 0.70
    # Diminishing returns past the knee: 70% capacity adds little.
    gain_knee = outcomes[0.39].stats.byte_hit_rate - outcomes[0.15].stats.byte_hit_rate
    gain_tail = outcomes[0.70].stats.byte_hit_rate - outcomes[0.39].stats.byte_hit_rate
    assert gain_tail < gain_knee
