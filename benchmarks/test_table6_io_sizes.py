"""Table 6: I/O sizes of an RM1 training job reading from storage.

Paper distribution (bytes): mean 23.2K, std 117K, p5 18, p25 451,
p50 1.24K, p75 3.92K, p95 97.7K — heavily right-skewed small reads.
Absolute sizes shrink with the miniature's row count; the asserted
target is the shape (mean >> median, long tail).
"""

from repro.analysis import measure_io_sizes, render_table
from repro.workloads import RM1, build_mini_dataset

from ._util import save_result

PAPER = {"mean": 23_200, "p5": 18, "p25": 451, "p50": 1_240, "p75": 3_920, "p95": 97_700}


def run_table6():
    dataset = build_mini_dataset(RM1, ["p0"], 2_500, seed=11)
    return measure_io_sizes(dataset, stripe_rows=2_500)


def test_table6_io_sizes(benchmark):
    study = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    summary = study.summary
    rows = [
        ["mean", summary.mean, PAPER["mean"]],
        ["std", summary.std, "117000"],
        ["p5", summary.p5, PAPER["p5"]],
        ["p25", summary.p25, PAPER["p25"]],
        ["p50", summary.p50, PAPER["p50"]],
        ["p75", summary.p75, PAPER["p75"]],
        ["p95", summary.p95, PAPER["p95"]],
        ["mean/p50 skew", study.skew, f"{PAPER['mean'] / PAPER['p50']:.1f}"],
    ]
    save_result(
        "table6_io_sizes",
        render_table(["stat", "measured (B)", "paper (B)"], rows,
                     title="Table 6 — I/O sizes of an RM1 job (no coalescing)"),
    )
    # Shape assertions: small median, heavy right tail, mean >> median.
    assert summary.p50 < 10_000
    assert study.skew > 3.0
    assert summary.p95 > 10 * summary.p50
    assert summary.p5 < summary.p25 < summary.p50 < summary.p75 < summary.p95
