"""Table 8: per-node GPU tensor ingestion throughput and its spread.

Paper: 16.50 / 4.69 / 12.00 GB/s per 8-GPU node for RM1/RM2/RM3 —
diverse demand that precludes one-size preprocessing provisioning;
demand projected to grow 3.5x within two years.
"""

from repro.analysis import render_table, table8_rows
from repro.trainer import GpuDemand, PROJECTED_GROWTH_FACTOR
from repro.workloads import ALL_MODELS

from ._util import save_result


def run_table8():
    rows = table8_rows()
    demands = {m.name: GpuDemand(m) for m in ALL_MODELS}
    return rows, demands


def test_table8_gpu_throughput(benchmark):
    rows, demands = benchmark(run_table8)
    table = []
    for row, model in zip(rows, ALL_MODELS):
        demand = demands[model.name]
        table.append(
            [
                row.model_name,
                row.trainer_gbs,
                demand.samples_per_s / 1_000,
                demand.projected().bytes_per_s / 1e9,
            ]
        )
    save_result(
        "table8_gpu_throughput",
        render_table(
            ["model", "GB/s per node", "ksamples/s per node",
             f"GB/s after {PROJECTED_GROWTH_FACTOR}x growth"],
            table,
            title="Table 8 — GPU trainer ingest throughput per 8-GPU node",
        ),
    )
    measured = {row.model_name: row.trainer_gbs for row in rows}
    assert measured == {"RM1": 16.50, "RM2": 4.69, "RM3": 12.00}
    assert max(measured.values()) / min(measured.values()) > 3.0
    # Growth projection applies uniformly.
    assert demands["RM1"].projected().bytes_per_s == 3.5 * demands["RM1"].bytes_per_s
