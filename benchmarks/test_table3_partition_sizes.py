"""Table 3: compressed sizes of all / each / used partitions per model.

Paper scale is petabytes; the miniature reproduces the *ratios* (used /
all, partition count) with real compressed DWRF bytes, then reports the
declared production sizes alongside.
"""

from repro.analysis import render_table
from repro.common.units import to_pb
from repro.dwrf import EncodingOptions
from repro.dwrf.writer import write_table_partition
from repro.workloads import ALL_MODELS, build_mini_dataset

from ._util import save_result


def run_table3():
    results = {}
    for model in ALL_MODELS:
        # A handful of date partitions; a representative RC job reads
        # most but not all of them (Table 3's used < all).
        n_partitions = 6
        used = round(n_partitions * model.table_sizes.used_partitions
                     / model.table_sizes.all_partitions)
        dataset = build_mini_dataset(
            model, [f"ds={i}" for i in range(n_partitions)], 150, seed=3
        )
        sizes = {}
        for name in dataset.table.partition_names():
            dwrf = write_table_partition(
                dataset.table.partition(name).rows,
                dataset.schema,
                EncodingOptions(stripe_rows=256),
            )
            sizes[name] = dwrf.size
        results[model.name] = (sizes, used)
    return results


def test_table3_partition_sizes(benchmark):
    results = benchmark(run_table3)
    rows = []
    for model in ALL_MODELS:
        sizes, used = results[model.name]
        total = sum(sizes.values())
        used_bytes = sum(list(sizes.values())[:used])
        rows.append(
            [
                model.name,
                total / 1e6,  # MB at miniature scale
                (total / len(sizes)) / 1e6,
                used_bytes / 1e6,
                used_bytes / total,
                model.table_sizes.used_partitions / model.table_sizes.all_partitions,
                to_pb(model.table_sizes.all_partitions),
            ]
        )
    save_result(
        "table3_partition_sizes",
        render_table(
            ["model", "all (MB mini)", "each (MB mini)", "used (MB mini)",
             "used/all (meas.)", "used/all (paper)", "paper all (PB)"],
            rows,
            title="Table 3 — partition sizes (miniature bytes, paper ratios)",
        ),
    )
    for model in ALL_MODELS:
        sizes, used = results[model.name]
        measured_ratio = sum(list(sizes.values())[:used]) / sum(sizes.values())
        paper_ratio = (
            model.table_sizes.used_partitions / model.table_sizes.all_partitions
        )
        assert abs(measured_ratio - paper_ratio) < 0.2
        # Partitions are near-uniform in size (daily cadence).
        values = list(sizes.values())
        assert max(values) / min(values) < 1.3
