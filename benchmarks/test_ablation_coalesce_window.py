"""Ablation: the coalesced-read window size (§7.5's 1.25 MiB choice).

Sweeps the window from 0 (no coalescing) upward on a real flattened
dataset and measures storage throughput under the HDD model.  Small
windows leave reads seek-bound; very large windows over-read cold
features; the production 1.25 MiB sits near the knee.
"""

from repro.analysis import render_table
from repro.dwrf import DwrfReader, EncodingOptions, IOTrace, ReadOptions
from repro.tectonic import TectonicFilesystem, hdd_node
from repro.warehouse import publish_table
from repro.warehouse.publish import partition_file_name
from repro.workloads import RM1, build_mini_dataset

from ._util import save_result

WINDOWS = [0, 64 << 10, 256 << 10, 1_310_720, 8 << 20]


def run_sweep():
    dataset = build_mini_dataset(RM1, ["p0"], 4_000, seed=11)
    filesystem = TectonicFilesystem(n_nodes=6)
    footers = publish_table(
        filesystem, dataset.table, EncodingOptions(stripe_rows=2_000)
    )
    media = hdd_node()
    outcomes = {}
    for window in WINDOWS:
        trace = IOTrace()
        for partition, footer in footers.items():
            path = partition_file_name(dataset.table.name, partition)
            reader = DwrfReader(
                footer,
                filesystem.fetcher(path),
                ReadOptions(projection=dataset.projection, coalesce_window=window),
                trace=trace,
            )
            for index in range(len(footer.stripes)):
                reader.read_stripe(index, dataset.schema)
        disk_time = media.trace_time(trace.io_sizes(), trace.seek_count())
        outcomes[window] = (trace, trace.useful_bytes / disk_time)
    return outcomes


def test_ablation_coalesce_window(benchmark):
    outcomes = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    base_throughput = outcomes[0][1]
    rows = []
    for window, (trace, throughput) in outcomes.items():
        label = "none" if window == 0 else f"{window >> 10} KiB"
        rows.append(
            [
                label,
                trace.io_count,
                trace.seek_count(),
                f"{100 * trace.overread_fraction:.0f}%",
                f"{throughput / base_throughput:.2f}x",
            ]
        )
    save_result(
        "ablation_coalesce_window",
        render_table(
            ["window", "I/Os", "seeks", "over-read", "useful throughput"],
            rows,
            title="Ablation — coalesced-read window size (RM1 projection, HDD)",
        ),
    )
    # Any coalescing beats none on seek-bound HDDs.
    assert outcomes[1_310_720][1] > 3 * base_throughput
    # The production window captures most of the available gain.
    best = max(throughput for _, throughput in outcomes.values())
    assert outcomes[1_310_720][1] > 0.6 * best
    # Over-read grows monotonically with the window.
    overreads = [outcomes[w][0].overread_fraction for w in WINDOWS]
    assert all(b >= a - 1e-9 for a, b in zip(overreads, overreads[1:]))
