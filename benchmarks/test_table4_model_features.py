"""Table 4: dense / sparse / derived features each model requires.

The miniature job DAG must reproduce the paper's per-type selection
rates and derived-feature scaling.
"""

from repro.analysis import render_table
from repro.workloads import ALL_MODELS, build_mini_dataset

from ._util import save_result


def run_table4():
    return {
        model.name: build_mini_dataset(model, ["p0"], 60, seed=4)
        for model in ALL_MODELS
    }


def test_table4_model_features(benchmark):
    datasets = benchmark(run_table4)
    rows = []
    for model in ALL_MODELS:
        dataset = datasets[model.name]
        dense = sum(
            1 for fid in dataset.projection
            if dataset.schema.get(fid).name.startswith("dense_")
        )
        sparse = len(dataset.projection) - dense
        derived = len(dataset.output_ids)
        rows.append(
            [model.name, dense, sparse, derived,
             model.features.n_dense, model.features.n_sparse,
             model.features.n_derived]
        )
    save_result(
        "table4_model_features",
        render_table(
            ["model", "dense (mini)", "sparse (mini)", "derived (mini)",
             "dense (paper)", "sparse (paper)", "derived (paper)"],
            rows,
            title="Table 4 — features required per model (miniature vs paper)",
        ),
    )
    for model in ALL_MODELS:
        dataset = datasets[model.name]
        dense = sum(
            1 for fid in dataset.projection
            if dataset.schema.get(fid).name.startswith("dense_")
        )
        sparse = len(dataset.projection) - dense
        # Selection rates (features used / features stored) match the
        # paper's per-type rates at miniature scale.
        dense_total = sum(
            1 for s in dataset.schema if s.name.startswith("dense_")
        )
        sparse_total = len(dataset.schema) - dense_total
        paper_dense_rate = model.features.n_dense / model.dataset.n_float_features
        paper_sparse_rate = model.features.n_sparse / model.dataset.n_sparse_features
        assert abs(dense / dense_total - paper_dense_rate) < 0.03
        assert abs(sparse / sparse_total - paper_sparse_rate) < 0.08
