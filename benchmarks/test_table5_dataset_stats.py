"""Table 5: dataset characteristics and read selectivity per model.

Paper: jobs read 9-11% of stored features but 21-37% of stored bytes,
because read features skew toward high coverage and longer lists.
"""

from repro.analysis import measure_read_selectivity, render_table
from repro.workloads import ALL_MODELS, build_mini_dataset

from ._util import save_result


def run_table5():
    results = {}
    for model in ALL_MODELS:
        dataset = build_mini_dataset(model, ["p0"], 500, seed=11)
        results[model.name] = (dataset, measure_read_selectivity(dataset))
    return results


def test_table5_dataset_stats(benchmark):
    results = benchmark(run_table5)
    rows = []
    for model in ALL_MODELS:
        dataset, selectivity = results[model.name]
        rows.append(
            [
                model.name,
                len(dataset.schema),
                selectivity.pct_features_used,
                model.dataset.pct_features_used,
                selectivity.pct_bytes_used,
                model.dataset.pct_bytes_used,
            ]
        )
    save_result(
        "table5_dataset_stats",
        render_table(
            ["model", "features (mini)", "% feats (meas.)", "% feats (paper)",
             "% bytes (meas.)", "% bytes (paper)"],
            rows,
            title="Table 5 — read selectivity per model",
        ),
    )
    for model in ALL_MODELS:
        _, selectivity = results[model.name]
        assert abs(
            selectivity.pct_features_used - model.dataset.pct_features_used
        ) < 3.0
        # Bytes land in the paper's ballpark and always exceed the
        # feature fraction (the coverage/length bias).
        assert abs(selectivity.pct_bytes_used - model.dataset.pct_bytes_used) < 16.0
        assert selectivity.pct_bytes_used > selectivity.pct_features_used
