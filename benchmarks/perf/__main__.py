"""``python -m benchmarks.perf`` — run the harness and print the metrics."""

from .harness import main

main()
