"""``python -m benchmarks.perf`` — run the harness; ``--check`` gates
against the committed baseline instead of rewriting it."""

import sys

from .harness import main

sys.exit(main())
