"""Microbenchmarks for the DSI data plane's real hot paths.

Each benchmark times a fixed workload with ``time.perf_counter`` and
reports a throughput metric:

* ``seal_mb_per_s`` / ``unseal_mb_per_s`` — the compress+encrypt codec
  (`repro.dwrf.encoding.seal`/``unseal``) over stripe-sized payloads;
* ``stripe_encode_rows_per_s`` / ``stripe_decode_rows_per_s`` — the
  FLATTENED columnar stripe codec end to end;
* ``extract_samples_per_s`` — a full DPP session (extract → transform
  → load) on an RM1-shaped miniature, flatmap path;
* ``fleet_events_per_s`` — discrete-event throughput of the fleet
  simulator (PR 1's orchestration plane).

Results are merged into one ``BENCH_perf.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass

import numpy as np

BENCH_PATH = pathlib.Path(__file__).resolve().parents[2] / "BENCH_perf.json"

#: Workload sizes tuned so the full harness stays in single-digit seconds.
SEAL_PAYLOAD_BYTES = 4 * 1024 * 1024
STRIPE_ROWS = 2_000
EXTRACT_ROWS = 4_000
FLEET_JOBS = 6


@dataclass(frozen=True)
class Metric:
    """One named throughput measurement."""

    name: str
    value: float
    unit: str
    workload: str


def _timed(work, *, repeats: int = 1):
    """Best-of-*repeats* wall time of ``work()`` (returns last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = work()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_seal(repeats: int = 3) -> list[Metric]:
    """Seal/unseal throughput on a compressible stripe-sized payload."""
    from repro.dwrf import encoding

    rng = np.random.default_rng(3)
    # Realistic compressibility: narrow-range ints, like ID streams.
    payload = rng.integers(0, 5_000, size=SEAL_PAYLOAD_BYTES // 4).astype("<i4").tobytes()
    mb = len(payload) / 1e6
    seal_s, sealed = _timed(lambda: encoding.seal(payload), repeats=repeats)
    unseal_s, _ = _timed(lambda: encoding.unseal(sealed), repeats=repeats)
    workload = f"{mb:.0f} MB synthetic ID stream"
    return [
        Metric("seal_mb_per_s", mb / seal_s, "MB/s", workload),
        Metric("unseal_mb_per_s", mb / unseal_s, "MB/s", workload),
    ]


def bench_stripe_codec(repeats: int = 2) -> list[Metric]:
    """FLATTENED stripe encode/decode throughput in rows per second."""
    from repro.dwrf.layout import EncodingOptions, FileLayout
    from repro.dwrf.reader import DwrfReader
    from repro.dwrf.writer import write_table_partition
    from repro.workloads import RM1, build_mini_dataset

    dataset = build_mini_dataset(RM1, ["p0"], STRIPE_ROWS, seed=5)
    rows = dataset.table.partition("p0").rows
    options = EncodingOptions(layout=FileLayout.FLATTENED, stripe_rows=STRIPE_ROWS)
    encode_s, dwrf = _timed(
        lambda: write_table_partition(rows, dataset.table.schema, options),
        repeats=repeats,
    )
    decode_s, decoded = _timed(
        lambda: list(DwrfReader.for_file(dwrf).read_rows(dataset.table.schema)),
        repeats=repeats,
    )
    assert len(decoded) == len(rows)
    workload = f"RM1 miniature, {len(rows)} rows, 1 stripe"
    return [
        Metric("stripe_encode_rows_per_s", len(rows) / encode_s, "rows/s", workload),
        Metric("stripe_decode_rows_per_s", len(rows) / decode_s, "rows/s", workload),
    ]


def bench_extract(repeats: int = 1) -> list[Metric]:
    """End-to-end DPP session throughput (extract → transform → load)."""
    from repro.dpp.service import DppSession
    from repro.dpp.spec import SessionSpec
    from repro.dwrf.layout import EncodingOptions, FileLayout
    from repro.tectonic.filesystem import TectonicFilesystem
    from repro.warehouse.publish import publish_table
    from repro.workloads import RM1, build_mini_dataset

    dataset = build_mini_dataset(RM1, ["p0"], EXTRACT_ROWS, seed=9)

    def run_session() -> int:
        filesystem = TectonicFilesystem(n_nodes=6)
        footers = publish_table(
            filesystem,
            dataset.table,
            EncodingOptions(layout=FileLayout.FLATTENED, stripe_rows=1_000),
        )
        spec = SessionSpec(
            table_name=dataset.table.name,
            partitions=tuple(dataset.table.partition_names()),
            projection=dataset.projection,
            dag=dataset.dag,
            output_ids=dataset.output_ids,
            batch_size=256,
            coalesce_window=1_310_720,
        )
        session = DppSession(spec, filesystem, dataset.schema, footers, n_workers=2)
        session.pump()
        return sum(w.stats.rows_processed for w in session.workers)

    elapsed, rows = _timed(run_session, repeats=repeats)
    workload = f"RM1 miniature, {EXTRACT_ROWS} rows, publish + 2-worker session"
    return [Metric("extract_samples_per_s", rows / elapsed, "samples/s", workload)]


def bench_fleet(repeats: int = 1) -> list[Metric]:
    """Discrete-event throughput of the fleet orchestration plane."""
    from repro.cluster.job import JobKind
    from repro.fleet import FleetConfig, FleetJobSpec, FleetSimulator, PoolConfig, StorageFabric
    from repro.workloads.models import RM1, RM2

    config = FleetConfig(
        fabric=StorageFabric(n_hdd_nodes=40, n_ssd_cache_nodes=4),
        n_trainer_nodes=32,
        pool=PoolConfig(max_workers=2_000),
    )
    jobs = [
        FleetJobSpec(
            job_id=i,
            model=RM1 if i % 2 == 0 else RM2,
            kind=JobKind.EXPLORATORY,
            arrival_s=120.0 * i,
            trainer_nodes=2,
            target_samples=0.5 * 3600 * 2 * (RM1 if i % 2 == 0 else RM2).samples_per_s_per_trainer,
        )
        for i in range(FLEET_JOBS)
    ]

    def run_fleet() -> int:
        simulator = FleetSimulator(config, list(jobs))
        simulator.schedule()
        fired = 0
        while simulator.clock.step():
            fired += 1
        return fired

    elapsed, events = _timed(run_fleet, repeats=repeats)
    workload = f"{FLEET_JOBS} staggered jobs, run to completion ({events} events)"
    return [Metric("fleet_events_per_s", events / elapsed, "events/s", workload)]


def run_all(write: bool = True, path: pathlib.Path | None = None) -> dict:
    """Run every microbenchmark; optionally persist the JSON artifact.

    The default *path* is the repo-root ``BENCH_perf.json`` (the
    committed trajectory reference) — only the deliberate
    ``python -m benchmarks.perf`` entry point writes there; the tier-1
    structural test passes a temp path so plain ``pytest`` runs never
    dirty the tree with machine-local numbers.
    """
    metrics: list[Metric] = []
    for bench in (bench_seal, bench_stripe_codec, bench_extract, bench_fleet):
        metrics.extend(bench())
    payload = {
        "harness": "benchmarks.perf",
        "metrics": {
            m.name: {"value": round(m.value, 3), "unit": m.unit, "workload": m.workload}
            for m in metrics
        },
    }
    if write:
        target = BENCH_PATH if path is None else path
        target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main() -> None:
    payload = run_all()
    width = max(len(name) for name in payload["metrics"])
    print(f"perf harness → {BENCH_PATH}")
    for name, entry in payload["metrics"].items():
        print(f"  {name:<{width}}  {entry['value']:>14,.1f} {entry['unit']:<10} [{entry['workload']}]")


if __name__ == "__main__":
    main()
