"""Microbenchmarks for the DSI data plane's real hot paths.

Each benchmark times a fixed workload with ``time.perf_counter`` and
reports a throughput metric:

* ``seal_mb_per_s`` / ``unseal_mb_per_s`` — the compress+encrypt codec
  (`repro.dwrf.encoding.seal`/``unseal``) over stripe-sized payloads;
* ``stripe_encode_rows_per_s`` / ``stripe_decode_rows_per_s`` — the
  FLATTENED columnar stripe codec end to end;
* ``extract_samples_per_s`` — a full DPP session (extract → transform
  → load) on an RM1-shaped miniature, flatmap path;
* ``simclock_events_per_s`` — raw discrete-event kernel throughput
  (schedule/fire chains plus cancel traffic for the lazy-deletion path);
* ``fleet_events_per_s`` — discrete-event throughput of the fleet
  simulator on a 32-job multi-tenant region (telemetry disabled — this
  is also the disabled-overhead gate for the tracing plane);
* ``traced_fleet_events_per_s`` — the same region with full sim-time
  tracing enabled, measuring the telemetry tax;
* ``sweep_scenarios_per_s`` — parallel scenario-sweep throughput
  (persistent fork-pool fan-out over a shared-memory arena);
* ``journaled_sweep_scenarios_per_s`` — the same sweep with the
  crash-safe run journal enabled (one fsync'd JSONL append per cell),
  measuring the durability tax against ``sweep_scenarios_per_s``;
* ``serving_requests_per_s`` / ``serving_p99_fetch_ms`` — the live DPP
  service plane under a bursty open-loop load test: wall-clock request
  throughput through the async kernel, plus the (deterministic,
  virtual-time) P99 trainer fetch latency the same run reports.

Results are merged into one ``BENCH_perf.json`` at the repo root, and
:func:`compare_against_baseline` turns the committed artifact into a
regression gate (CI fails the perf job when any metric loses more than
30% against it).  ``--profile`` runs the sweep workload under stdlib
``cProfile`` and prints the top cumulative functions — the first stop
when a sweep number moves.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass

import numpy as np

BENCH_PATH = pathlib.Path(__file__).resolve().parents[2] / "BENCH_perf.json"

#: Workload sizes tuned so the full harness stays in single-digit seconds.
SEAL_PAYLOAD_BYTES = 4 * 1024 * 1024
STRIPE_ROWS = 2_000
EXTRACT_ROWS = 4_000
FLEET_JOBS = 32
FLEET_WAVES = 4
FLEET_WAVE_GAP_S = 900.0
FLEET_JOB_HOURS = 6.0
SIMCLOCK_CHAINS = 64
SIMCLOCK_EVENTS = 200_000
SWEEP_SEEDS = 8
SWEEP_HORIZON_S = 3_600.0
#: Pool width for the sweep benches, capped at what the machine has —
#: oversubscribing a small box just measures scheduler thrash.
SWEEP_PROCESSES = min(4, os.cpu_count() or 1)
SERVING_REQUESTS = 2_000

#: Fractional slowdown against the committed baseline that fails CI.
REGRESSION_TOLERANCE = 0.30


@dataclass(frozen=True)
class Metric:
    """One named throughput measurement."""

    name: str
    value: float
    unit: str
    workload: str


def _timed(work, *, repeats: int = 1):
    """Best-of-*repeats* wall time of ``work()`` (returns last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = work()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_seal(repeats: int = 3) -> list[Metric]:
    """Seal/unseal throughput on a compressible stripe-sized payload."""
    from repro.dwrf import encoding

    rng = np.random.default_rng(3)
    # Realistic compressibility: narrow-range ints, like ID streams.
    payload = rng.integers(0, 5_000, size=SEAL_PAYLOAD_BYTES // 4).astype("<i4").tobytes()
    mb = len(payload) / 1e6
    seal_s, sealed = _timed(lambda: encoding.seal(payload), repeats=repeats)
    unseal_s, _ = _timed(lambda: encoding.unseal(sealed), repeats=repeats)
    workload = f"{mb:.0f} MB synthetic ID stream"
    return [
        Metric("seal_mb_per_s", mb / seal_s, "MB/s", workload),
        Metric("unseal_mb_per_s", mb / unseal_s, "MB/s", workload),
    ]


def bench_stripe_codec(repeats: int = 2) -> list[Metric]:
    """FLATTENED stripe encode/decode throughput in rows per second."""
    from repro.dwrf.layout import EncodingOptions, FileLayout
    from repro.dwrf.reader import DwrfReader
    from repro.dwrf.writer import write_table_partition
    from repro.workloads import RM1, build_mini_dataset

    dataset = build_mini_dataset(RM1, ["p0"], STRIPE_ROWS, seed=5)
    rows = dataset.table.partition("p0").rows
    options = EncodingOptions(layout=FileLayout.FLATTENED, stripe_rows=STRIPE_ROWS)
    encode_s, dwrf = _timed(
        lambda: write_table_partition(rows, dataset.table.schema, options),
        repeats=repeats,
    )
    decode_s, decoded = _timed(
        lambda: list(DwrfReader.for_file(dwrf).read_rows(dataset.table.schema)),
        repeats=repeats,
    )
    assert len(decoded) == len(rows)
    workload = f"RM1 miniature, {len(rows)} rows, 1 stripe"
    return [
        Metric("stripe_encode_rows_per_s", len(rows) / encode_s, "rows/s", workload),
        Metric("stripe_decode_rows_per_s", len(rows) / decode_s, "rows/s", workload),
    ]


def bench_extract(repeats: int = 1) -> list[Metric]:
    """End-to-end DPP session throughput (extract → transform → load)."""
    from repro.dpp.service import DppSession
    from repro.dpp.spec import SessionSpec
    from repro.dwrf.layout import EncodingOptions, FileLayout
    from repro.tectonic.filesystem import TectonicFilesystem
    from repro.warehouse.publish import publish_table
    from repro.workloads import RM1, build_mini_dataset

    dataset = build_mini_dataset(RM1, ["p0"], EXTRACT_ROWS, seed=9)

    def run_session() -> int:
        filesystem = TectonicFilesystem(n_nodes=6)
        footers = publish_table(
            filesystem,
            dataset.table,
            EncodingOptions(layout=FileLayout.FLATTENED, stripe_rows=1_000),
        )
        spec = SessionSpec(
            table_name=dataset.table.name,
            partitions=tuple(dataset.table.partition_names()),
            projection=dataset.projection,
            dag=dataset.dag,
            output_ids=dataset.output_ids,
            batch_size=256,
            coalesce_window=1_310_720,
        )
        session = DppSession(spec, filesystem, dataset.schema, footers, n_workers=2)
        session.pump()
        return sum(w.stats.rows_processed for w in session.workers)

    elapsed, rows = _timed(run_session, repeats=repeats)
    workload = f"RM1 miniature, {EXTRACT_ROWS} rows, publish + 2-worker session"
    return [Metric("extract_samples_per_s", rows / elapsed, "samples/s", workload)]


def bench_simclock(repeats: int = 3) -> list[Metric]:
    """Raw kernel throughput: chained events plus cancel churn.

    The workload mirrors what the fleet plane asks of the clock:
    many interleaved self-rescheduling processes, with a quarter of
    each round's schedules cancelled before firing (exercising the
    lazy-deletion/compaction path).
    """
    from repro.common.simclock import SimClock

    per_chain = SIMCLOCK_EVENTS // SIMCLOCK_CHAINS

    def run_kernel() -> int:
        clock = SimClock()
        state = {"doomed": []}

        def make_chain(offset: float):
            remaining = [per_chain]

            def hop() -> None:
                remaining[0] -= 1
                if remaining[0] > 0:
                    clock.schedule(1.0, hop)
                    # Cancel traffic: every fourth hop also schedules a
                    # decoy and kills it, so the heap carries corpses.
                    if remaining[0] % 4 == 0:
                        state["doomed"].append(clock.schedule(5.0, _noop))
                        if len(state["doomed"]) >= 512:
                            for handle in state["doomed"]:
                                handle.cancel()
                            state["doomed"].clear()

            clock.schedule(offset, hop)

        def _noop() -> None:
            pass

        for chain in range(SIMCLOCK_CHAINS):
            make_chain(1.0 + chain / SIMCLOCK_CHAINS)
        return clock.run(max_events=2 * SIMCLOCK_EVENTS)

    elapsed, events = _timed(run_kernel, repeats=repeats)
    workload = (
        f"{SIMCLOCK_CHAINS} chains, {events} events, 25% cancel traffic"
    )
    return [Metric("simclock_events_per_s", events / elapsed, "events/s", workload)]


def _fleet_workload():
    """The shared 32-job region both fleet benches run.

    Jobs arrive in :data:`FLEET_WAVES` synchronized waves (the paper's
    exploratory bursts land as co-scheduled batches, not a Poisson
    trickle), on a region wide enough to admit every wave: the steady
    stretches between waves are where a fleet simulator spends real
    sweeps, and they keep the region above the vectorized-tick
    threshold for most of the run.
    """
    from repro.cluster.job import JobKind
    from repro.fleet import FleetConfig, FleetJobSpec, PoolConfig, StorageFabric
    from repro.workloads.models import RM1, RM2, RM3

    models = (RM1, RM2, RM3)
    config = FleetConfig(
        fabric=StorageFabric(n_hdd_nodes=40, n_ssd_cache_nodes=4),
        n_trainer_nodes=64,
        pool=PoolConfig(max_workers=2_000),
    )
    per_wave = FLEET_JOBS // FLEET_WAVES
    jobs = [
        FleetJobSpec(
            job_id=i,
            model=models[i % 3],
            kind=JobKind.EXPLORATORY,
            arrival_s=FLEET_WAVE_GAP_S * (i // per_wave),
            trainer_nodes=2,
            target_samples=FLEET_JOB_HOURS
            * 3600
            * 2
            * models[i % 3].samples_per_s_per_trainer,
        )
        for i in range(FLEET_JOBS)
    ]
    return config, jobs


def bench_fleet(repeats: int = 3) -> list[Metric]:
    """Discrete-event throughput of the fleet orchestration plane.

    Telemetry stays disabled (the NULL_TRACER default), so this metric
    doubles as the disabled-overhead gate: instrumented hot paths pay
    one attribute check, and the 30% regression tolerance on this
    number is the backstop if that ever stops being true.
    """
    from repro.fleet import FleetSimulator

    config, jobs = _fleet_workload()

    def run_fleet() -> int:
        simulator = FleetSimulator(config, list(jobs))
        simulator.schedule()
        return simulator.clock.run()

    elapsed, events = _timed(run_fleet, repeats=repeats)
    workload = (
        f"{FLEET_JOBS} jobs in {FLEET_WAVES} waves, run to completion "
        f"({events} events)"
    )
    return [Metric("fleet_events_per_s", events / elapsed, "events/s", workload)]


def bench_traced_fleet(repeats: int = 3) -> list[Metric]:
    """The same fleet region with full telemetry recording on.

    The gap between this and ``fleet_events_per_s`` is the tracing
    tax: clock hook, tick spans, job-lifecycle spans, and per-sample
    counters all live.
    """
    from repro.fleet import FleetSimulator
    from repro.telemetry import Tracer

    config, jobs = _fleet_workload()

    def run_fleet() -> int:
        tracer = Tracer(scenario="bench", seed=0)
        simulator = FleetSimulator(config, list(jobs), tracer=tracer)
        simulator.schedule()
        events = simulator.clock.run()
        assert tracer.event_count > 0
        return events

    elapsed, events = _timed(run_fleet, repeats=repeats)
    workload = (
        f"{FLEET_JOBS} jobs in {FLEET_WAVES} waves, tracing enabled "
        f"({events} events)"
    )
    return [
        Metric("traced_fleet_events_per_s", events / elapsed, "events/s", workload)
    ]


def _sweep_grid():
    """The shared sweep workload (also what ``--profile`` profiles)."""
    from repro.experiments import ScenarioGrid
    from repro.fleet import FleetConfig, FleetMix, PoolConfig, StorageFabric

    return ScenarioGrid(
        seeds=tuple(range(SWEEP_SEEDS)),
        mixes=(
            ("default", FleetMix()),
            ("busy", FleetMix(exploratory_per_day=96.0)),
        ),
        configs=(
            (
                "base",
                FleetConfig(
                    fabric=StorageFabric(n_hdd_nodes=20, n_ssd_cache_nodes=2),
                    n_trainer_nodes=16,
                    pool=PoolConfig(max_workers=500),
                ),
            ),
        ),
        duration_s=SWEEP_HORIZON_S,
    )


def bench_sweep(repeats: int = 1) -> list[Metric]:
    """Scenario-sweep throughput: persistent-pool fan-out over a grid."""
    from repro.experiments import SweepRunner

    grid = _sweep_grid()

    def run_sweep() -> int:
        report = SweepRunner(grid, jobs=SWEEP_PROCESSES).run()
        return len(report.results)

    elapsed, scenarios = _timed(run_sweep, repeats=repeats)
    workload = (
        f"{len(grid)} scenarios (2 mixes x {SWEEP_SEEDS} seeds), "
        f"{SWEEP_PROCESSES} processes"
    )
    return [
        Metric("sweep_scenarios_per_s", scenarios / elapsed, "scenarios/s", workload)
    ]


def bench_sweep_journaled(repeats: int = 1) -> list[Metric]:
    """The same sweep with the crash-safe run journal turned on.

    Journal appends batch per worker chunk — one compact-JSON write
    plus one ``fsync`` covers every cell the chunk completed — so the
    gap between this and ``sweep_scenarios_per_s`` is the durability
    tax at chunk granularity.  The 30% regression gate on this metric
    is the journal-overhead budget the fault-tolerance plane has to
    live inside.
    """
    import tempfile

    from repro.experiments import SweepRunner

    grid = _sweep_grid()

    def run_sweep() -> int:
        with tempfile.TemporaryDirectory() as scratch:
            journal = pathlib.Path(scratch) / "bench.journal.jsonl"
            report = SweepRunner(grid, jobs=SWEEP_PROCESSES).run(
                journal_path=journal
            )
            return len(report.results)

    elapsed, scenarios = _timed(run_sweep, repeats=repeats)
    workload = (
        f"{len(grid)} scenarios, {SWEEP_PROCESSES} processes, "
        "fsync'd journal per chunk"
    )
    return [
        Metric(
            "journaled_sweep_scenarios_per_s",
            scenarios / elapsed,
            "scenarios/s",
            workload,
        )
    ]


def bench_serving(repeats: int = 1) -> list[Metric]:
    """The live serving plane: kernel throughput and tail latency.

    Drives the ``serving/bursty`` shape (synchronized-trainer-step
    bursts under retry-with-backoff) so admission control, both worker
    pools, and the backoff path are all hot.  The throughput metric is
    wall-clock — how fast the cooperative kernel turns the load test —
    while the P99 fetch latency is virtual-time and therefore
    deterministic: it moves only when plane *behavior* changes, making
    it a free semantic regression tripwire alongside the perf gate.
    """
    from repro.serving import ServingScenario

    scenario = ServingScenario(
        name="bench/serving",
        seed=0,
        arrival_mix="bursty",
        fetch_policy="retry",
        n_requests=SERVING_REQUESTS,
    )
    elapsed, report = _timed(scenario.run, repeats=repeats)
    workload = (
        f"bursty open-loop mix, {SERVING_REQUESTS} fetches, retry policy"
    )
    return [
        Metric(
            "serving_requests_per_s", report.served / elapsed, "req/s", workload
        ),
        Metric("serving_p99_fetch_ms", report.fetch_p99_ms, "ms", workload),
    ]


def run_all(write: bool = True, path: pathlib.Path | None = None) -> dict:
    """Run every microbenchmark; optionally persist the JSON artifact.

    The default *path* is the repo-root ``BENCH_perf.json`` (the
    committed trajectory reference) — only the deliberate
    ``python -m benchmarks.perf`` entry point writes there; the tier-1
    structural test passes a temp path so plain ``pytest`` runs never
    dirty the tree with machine-local numbers.
    """
    metrics: list[Metric] = []
    for bench in (
        bench_seal,
        bench_stripe_codec,
        bench_extract,
        bench_simclock,
        bench_fleet,
        bench_traced_fleet,
        bench_sweep,
        bench_sweep_journaled,
        bench_serving,
    ):
        metrics.extend(bench())
    payload = {
        "harness": "benchmarks.perf",
        "metrics": {
            m.name: {"value": round(m.value, 3), "unit": m.unit, "workload": m.workload}
            for m in metrics
        },
    }
    if write:
        from repro.common.serialization import atomic_write_text

        target = BENCH_PATH if path is None else path
        atomic_write_text(
            target, json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    return payload


def compare_against_baseline(
    payload: dict,
    baseline: dict,
    tolerance: float = REGRESSION_TOLERANCE,
) -> list[str]:
    """Regressions of *payload* versus *baseline*, as human-readable lines.

    A metric regresses when its fresh value falls more than *tolerance*
    below the baseline's.  Metrics present only on one side are noted
    but do not fail the gate (the baseline predates newly added
    benchmarks exactly once).
    """
    problems: list[str] = []
    fresh = payload["metrics"]
    recorded = baseline.get("metrics", {})
    for name, entry in sorted(recorded.items()):
        if name not in fresh:
            continue  # retired metric: the baseline refresh removes it
        old = entry.get("value")
        new = fresh[name].get("value")
        if old is None or new is None:
            continue  # malformed entry: informational in the delta table
        if old > 0 and new < old * (1.0 - tolerance):
            # Same one-decimal rounding as delta_table, so the two
            # renderings of one regression never disagree.
            problems.append(
                f"{name}: {new:,.1f} {fresh[name].get('unit', '')} is "
                f"{(1.0 - new / old):.1%} below baseline {old:,.1f}"
            )
    return problems


def baseline_warnings(baseline: dict) -> list[str]:
    """Schema warnings for the committed baseline, as printable lines.

    A baseline metric missing its ``unit`` or ``workload`` field still
    gates fine (only ``value`` matters to the tolerance check), but it
    means the artifact was hand-edited or written by an older harness —
    worth a loud warning instead of a silent pass.
    """
    warnings: list[str] = []
    for name, entry in sorted(baseline.get("metrics", {}).items()):
        missing = [field for field in ("unit", "workload") if not entry.get(field)]
        if missing:
            warnings.append(
                f"warning: baseline metric {name!r} is missing "
                f"{' and '.join(missing)} — refresh BENCH_perf.json with "
                "`python -m benchmarks.perf`"
            )
    return warnings


def delta_table(payload: dict, baseline: dict) -> list[str]:
    """Per-metric delta lines over the *union* of both metric sets.

    Metrics on one side only never fail anything — they render as
    informational ``new (no baseline)`` / ``retired`` rows, so a
    freshly added benchmark cannot hard-fail ``--check`` against a
    baseline that predates it.
    """
    fresh = payload.get("metrics", {})
    recorded = baseline.get("metrics", {})
    names = sorted(set(fresh) | set(recorded))
    if not names:
        return ["  (no metrics on either side)"]
    width = max(len(name) for name in names)
    lines = []
    for name in names:
        new = fresh.get(name, {}).get("value")
        old = recorded.get(name, {}).get("value")
        unit = fresh.get(name, {}).get("unit") or recorded.get(name, {}).get(
            "unit", ""
        )
        if new is None and old is None:
            lines.append(
                f"  {name:<{width}}  (no value recorded on either side)"
            )
        elif new is None:
            lines.append(
                f"  {name:<{width}}  {'-':>14}  vs {old:>14,.1f} {unit:<12} "
                "retired (not measured this run)"
            )
        elif old is None:
            lines.append(
                f"  {name:<{width}}  {new:>14,.1f}  {unit:<12} "
                "new (no baseline yet — informational)"
            )
        else:
            delta = (new - old) / old if old else float("nan")
            lines.append(
                f"  {name:<{width}}  {new:>14,.1f}  vs {old:>14,.1f} "
                f"{unit:<12} {delta:+.1%}"
            )
    return lines


def gate_required(
    payload: dict, baseline: dict, required: tuple[str, ...]
) -> list[str]:
    """Hard failures for metrics that *must* hold the gate.

    The plain tolerance check deliberately ignores metrics that exist
    on only one side (baselines predate new benchmarks exactly once).
    A *required* metric gets no such grace: missing from the fresh run
    or from the committed baseline is itself a gate failure, so a
    renamed or silently dropped headline metric cannot sneak past CI.
    """
    problems: list[str] = []
    fresh = payload.get("metrics", {})
    recorded = baseline.get("metrics", {})
    for name in required:
        if fresh.get(name, {}).get("value") is None:
            problems.append(f"{name}: required gate metric missing from this run")
        elif recorded.get(name, {}).get("value") is None:
            problems.append(
                f"{name}: required gate metric missing from the committed "
                "baseline — refresh BENCH_perf.json"
            )
    return problems


def check(
    path: pathlib.Path | None = None,
    tolerance: float = REGRESSION_TOLERANCE,
    artifact: pathlib.Path | None = None,
    delta_out: pathlib.Path | None = None,
    required: tuple[str, ...] = (),
) -> int:
    """Run the harness and gate it against the committed baseline.

    Returns a process exit code: 0 when every metric holds within
    *tolerance* of ``BENCH_perf.json`` (or no baseline exists yet),
    1 otherwise.  The fresh run is *not* written to the baseline —
    refreshing it stays a deliberate ``python -m benchmarks.perf`` act
    — but *artifact* captures it elsewhere (the CI job gates and
    uploads from one harness run instead of benchmarking twice), and
    *delta_out* writes the per-metric delta table as its own text
    artifact.
    """
    baseline_path = BENCH_PATH if path is None else path
    payload = run_all(write=artifact is not None, path=artifact)
    _print_metrics(payload, header="perf harness (check mode)")
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; skipping regression gate")
        if delta_out is not None:
            delta_out.write_text("(no baseline; no deltas recorded)\n")
        return 0
    baseline = json.loads(baseline_path.read_text())
    for warning in baseline_warnings(baseline):
        print(warning)
    deltas = delta_table(payload, baseline)
    print(f"deltas versus {baseline_path}:")
    for line in deltas:
        print(line)
    problems = gate_required(payload, baseline, required)
    problems += compare_against_baseline(payload, baseline, tolerance)
    if delta_out is not None:
        status = (
            f"FAIL: {len(problems)} metric(s) regressed beyond "
            f"{tolerance:.0%}"
            if problems
            else f"OK: all metrics within {tolerance:.0%} of baseline"
        )
        delta_out.write_text(
            f"deltas versus {baseline_path.name}:\n"
            + "\n".join(deltas)
            + "\n"
            + "\n".join(f"  {line}" for line in problems)
            + ("\n" if problems else "")
            + status
            + "\n"
        )
    if problems:
        print(f"PERF REGRESSION versus {baseline_path} (>{tolerance:.0%}):")
        for line in problems:
            print(f"  {line}")
        return 1
    print(f"all metrics within {tolerance:.0%} of {baseline_path}")
    return 0


def profile_sweep(top: int = 25) -> int:
    """cProfile the sweep workload and print the top-*top* functions.

    Runs the grid serially (``jobs=1``) so the profile captures the
    actual simulation stack instead of queue plumbing in the parent —
    worker-process samples never reach a parent-side profiler.  Sorted
    by cumulative time: the first stop when the sweep metric moves.
    """
    import cProfile
    import io
    import pstats

    from repro.experiments import SweepRunner

    grid = _sweep_grid()
    profiler = cProfile.Profile()
    profiler.enable()
    report = SweepRunner(grid, jobs=1).run()
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    print(
        f"profiled sweep workload: {len(report.results)} scenarios, serial "
        f"(top {top} by cumulative time)"
    )
    print(stream.getvalue())
    return 0


def _print_metrics(payload: dict, header: str) -> None:
    width = max(len(name) for name in payload["metrics"])
    print(header)
    for name, entry in payload["metrics"].items():
        print(
            f"  {name:<{width}}  {entry['value']:>14,.1f} {entry['unit']:<12} "
            f"[{entry['workload']}]"
        )


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(prog="python -m benchmarks.perf")
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed BENCH_perf.json instead of "
        "rewriting it; exit 1 on a >30%% regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=REGRESSION_TOLERANCE,
        help="fractional slowdown allowed in --check mode (default 0.30)",
    )
    parser.add_argument(
        "--artifact",
        type=pathlib.Path,
        help="in --check mode, also write the fresh metrics to this path "
        "(the committed baseline is never touched)",
    )
    parser.add_argument(
        "--delta-out",
        type=pathlib.Path,
        help="in --check mode, write the per-metric delta table to this "
        "path (for CI build artifacts)",
    )
    parser.add_argument(
        "--gate",
        action="append",
        default=[],
        metavar="METRIC",
        help="in --check mode, require METRIC to be present on both "
        "sides and hold the tolerance (repeatable); a missing required "
        "metric fails the gate instead of passing silently",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const=25,
        type=int,
        metavar="TOP",
        help="cProfile the sweep workload instead of benchmarking; print "
        "the top TOP functions by cumulative time (default 25)",
    )
    args = parser.parse_args(argv)
    if args.profile is not None:
        return profile_sweep(top=args.profile)
    if args.check:
        return check(
            tolerance=args.tolerance,
            artifact=args.artifact,
            delta_out=args.delta_out,
            required=tuple(args.gate),
        )
    payload = run_all()
    _print_metrics(payload, header=f"perf harness → {BENCH_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
