"""Perf-regression harness: machine-readable throughput trajectory.

Unlike the paper-table benchmarks (which assert *ratios* against the
paper), this package measures the reproduction's own wall-clock
throughput on fixed workloads and writes a consolidated
``BENCH_perf.json`` artifact.  Every future PR runs the same harness,
so hot-path regressions show up as a number, not a feeling.

Run standalone with ``python -m benchmarks.perf`` or as part of the
test suite (``pytest benchmarks/perf``).
"""

from .harness import BENCH_PATH, run_all  # noqa: F401
