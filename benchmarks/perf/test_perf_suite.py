"""The perf harness runs inside tier-1 and emits a valid artifact.

Assertions here are structural (every named metric present with a
positive value) — absolute throughput floors would flake across
machines.  The test writes to a temp path so plain ``pytest`` runs
never touch the committed repo-root ``BENCH_perf.json``; that file is
refreshed deliberately via ``python -m benchmarks.perf`` (the CI perf
job does this and uploads it), and trajectory comparisons across PRs
diff the committed artifact.
"""

import json

from .harness import run_all

REQUIRED_METRICS = {
    "seal_mb_per_s",
    "unseal_mb_per_s",
    "stripe_encode_rows_per_s",
    "stripe_decode_rows_per_s",
    "extract_samples_per_s",
    "fleet_events_per_s",
}


def test_perf_harness_writes_consolidated_artifact(tmp_path):
    artifact = tmp_path / "BENCH_perf.json"
    payload = run_all(write=True, path=artifact)
    assert json.loads(artifact.read_text()) == payload
    assert REQUIRED_METRICS <= set(payload["metrics"])
    for name, entry in payload["metrics"].items():
        assert entry["value"] > 0, f"metric {name} measured non-positive throughput"
        assert entry["unit"]
        assert entry["workload"]
