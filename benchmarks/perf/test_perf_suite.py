"""The perf harness runs inside tier-1 and emits a valid artifact.

Assertions here are structural (every named metric present with a
positive value) — absolute throughput floors would flake across
machines.  The test writes to a temp path so plain ``pytest`` runs
never touch the committed repo-root ``BENCH_perf.json``; that file is
refreshed deliberately via ``python -m benchmarks.perf`` (the CI perf
job regenerates and uploads it), and trajectory comparisons across PRs
diff the committed artifact.  The regression gate
(``python -m benchmarks.perf --check``) is covered with synthetic
payloads, where it cannot flake on machine speed.
"""

import json

from .harness import (
    REGRESSION_TOLERANCE,
    compare_against_baseline,
    delta_table,
    run_all,
)

REQUIRED_METRICS = {
    "seal_mb_per_s",
    "unseal_mb_per_s",
    "stripe_encode_rows_per_s",
    "stripe_decode_rows_per_s",
    "extract_samples_per_s",
    "simclock_events_per_s",
    "fleet_events_per_s",
    "traced_fleet_events_per_s",
    "sweep_scenarios_per_s",
    "journaled_sweep_scenarios_per_s",
    "serving_requests_per_s",
    "serving_p99_fetch_ms",
}


def test_perf_harness_writes_consolidated_artifact(tmp_path):
    artifact = tmp_path / "BENCH_perf.json"
    payload = run_all(write=True, path=artifact)
    assert json.loads(artifact.read_text()) == payload
    assert REQUIRED_METRICS <= set(payload["metrics"])
    for name, entry in payload["metrics"].items():
        assert entry["value"] > 0, f"metric {name} measured non-positive throughput"
        assert entry["unit"]
        assert entry["workload"]


def _payload(**values):
    return {
        "metrics": {
            name: {"value": value, "unit": "x/s", "workload": "synthetic"}
            for name, value in values.items()
        }
    }


class TestRegressionGate:
    def test_within_tolerance_passes(self):
        fresh = _payload(a=80.0, b=200.0)
        baseline = _payload(a=100.0, b=150.0)
        assert compare_against_baseline(fresh, baseline) == []

    def test_beyond_tolerance_flagged(self):
        fresh = _payload(a=60.0)
        baseline = _payload(a=100.0)
        problems = compare_against_baseline(fresh, baseline)
        assert len(problems) == 1
        assert "a:" in problems[0] and "40%" in problems[0]

    def test_boundary_is_exactly_the_tolerance(self):
        baseline = _payload(a=100.0)
        at_edge = _payload(a=100.0 * (1.0 - REGRESSION_TOLERANCE))
        assert compare_against_baseline(at_edge, baseline) == []
        below = _payload(a=100.0 * (1.0 - REGRESSION_TOLERANCE) - 0.5)
        assert compare_against_baseline(below, baseline)

    def test_new_metrics_do_not_fail_the_gate(self):
        fresh = _payload(a=100.0, brand_new=1.0)
        baseline = _payload(a=100.0)
        assert compare_against_baseline(fresh, baseline) == []

    def test_retired_metrics_do_not_fail_the_gate(self):
        fresh = _payload(a=100.0)
        baseline = _payload(a=100.0, retired=50.0)
        assert compare_against_baseline(fresh, baseline) == []

    def test_malformed_entries_do_not_fail_the_gate(self):
        fresh = {"metrics": {"a": {"unit": "x/s"}}}  # no "value"
        baseline = _payload(a=100.0)
        assert compare_against_baseline(fresh, baseline) == []


class TestDeltaTable:
    def test_union_with_new_and_retired_markers(self):
        fresh = _payload(a=90.0, brand_new=5.0)
        baseline = _payload(a=100.0, retired=2.0)
        lines = "\n".join(delta_table(fresh, baseline))
        assert "-10.0%" in lines
        assert "new (no baseline" in lines
        assert "retired" in lines

    def test_malformed_entries_are_informational_not_crashes(self):
        # A metrics entry missing "value" on either (or both) sides must
        # render, never raise — the same promise --check makes.
        fresh = {"metrics": {"x": {"unit": "s"}, "y": {"value": 1.0, "unit": "s"}}}
        baseline = {"metrics": {"x": {"unit": "s"}}}
        lines = delta_table(fresh, baseline)
        assert any("no value recorded" in line for line in lines)
        assert any("new (no baseline" in line for line in lines)

    def test_empty_sides_render(self):
        assert delta_table({}, {}) == ["  (no metrics on either side)"]
