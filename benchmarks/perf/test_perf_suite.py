"""The perf harness runs inside tier-1 and emits a valid artifact.

Assertions here are structural (every named metric present with a
positive value) — absolute throughput floors would flake across
machines.  The test writes to a temp path so plain ``pytest`` runs
never touch the committed repo-root ``BENCH_perf.json``; that file is
refreshed deliberately via ``python -m benchmarks.perf`` (the CI perf
job regenerates and uploads it), and trajectory comparisons across PRs
diff the committed artifact.  The regression gate
(``python -m benchmarks.perf --check``) is covered with synthetic
payloads, where it cannot flake on machine speed.
"""

import json

from .harness import (
    REGRESSION_TOLERANCE,
    baseline_warnings,
    compare_against_baseline,
    delta_table,
    gate_required,
    run_all,
)

REQUIRED_METRICS = {
    "seal_mb_per_s",
    "unseal_mb_per_s",
    "stripe_encode_rows_per_s",
    "stripe_decode_rows_per_s",
    "extract_samples_per_s",
    "simclock_events_per_s",
    "fleet_events_per_s",
    "traced_fleet_events_per_s",
    "sweep_scenarios_per_s",
    "journaled_sweep_scenarios_per_s",
    "serving_requests_per_s",
    "serving_p99_fetch_ms",
}


def test_perf_harness_writes_consolidated_artifact(tmp_path):
    artifact = tmp_path / "BENCH_perf.json"
    payload = run_all(write=True, path=artifact)
    assert json.loads(artifact.read_text()) == payload
    assert REQUIRED_METRICS <= set(payload["metrics"])
    for name, entry in payload["metrics"].items():
        assert entry["value"] > 0, f"metric {name} measured non-positive throughput"
        assert entry["unit"]
        assert entry["workload"]


def _payload(**values):
    return {
        "metrics": {
            name: {"value": value, "unit": "x/s", "workload": "synthetic"}
            for name, value in values.items()
        }
    }


class TestRegressionGate:
    def test_within_tolerance_passes(self):
        fresh = _payload(a=80.0, b=200.0)
        baseline = _payload(a=100.0, b=150.0)
        assert compare_against_baseline(fresh, baseline) == []

    def test_beyond_tolerance_flagged(self):
        fresh = _payload(a=60.0)
        baseline = _payload(a=100.0)
        problems = compare_against_baseline(fresh, baseline)
        assert len(problems) == 1
        # Regression lines round like delta_table: one decimal place.
        assert "a:" in problems[0] and "40.0%" in problems[0]

    def test_boundary_is_exactly_the_tolerance(self):
        baseline = _payload(a=100.0)
        at_edge = _payload(a=100.0 * (1.0 - REGRESSION_TOLERANCE))
        assert compare_against_baseline(at_edge, baseline) == []
        below = _payload(a=100.0 * (1.0 - REGRESSION_TOLERANCE) - 0.5)
        assert compare_against_baseline(below, baseline)

    def test_new_metrics_do_not_fail_the_gate(self):
        fresh = _payload(a=100.0, brand_new=1.0)
        baseline = _payload(a=100.0)
        assert compare_against_baseline(fresh, baseline) == []

    def test_retired_metrics_do_not_fail_the_gate(self):
        fresh = _payload(a=100.0)
        baseline = _payload(a=100.0, retired=50.0)
        assert compare_against_baseline(fresh, baseline) == []

    def test_malformed_entries_do_not_fail_the_gate(self):
        fresh = {"metrics": {"a": {"unit": "x/s"}}}  # no "value"
        baseline = _payload(a=100.0)
        assert compare_against_baseline(fresh, baseline) == []


class TestDeltaTable:
    def test_union_with_new_and_retired_markers(self):
        fresh = _payload(a=90.0, brand_new=5.0)
        baseline = _payload(a=100.0, retired=2.0)
        lines = "\n".join(delta_table(fresh, baseline))
        assert "-10.0%" in lines
        assert "new (no baseline" in lines
        assert "retired" in lines

    def test_malformed_entries_are_informational_not_crashes(self):
        # A metrics entry missing "value" on either (or both) sides must
        # render, never raise — the same promise --check makes.
        fresh = {"metrics": {"x": {"unit": "s"}, "y": {"value": 1.0, "unit": "s"}}}
        baseline = {"metrics": {"x": {"unit": "s"}}}
        lines = delta_table(fresh, baseline)
        assert any("no value recorded" in line for line in lines)
        assert any("new (no baseline" in line for line in lines)

    def test_empty_sides_render(self):
        assert delta_table({}, {}) == ["  (no metrics on either side)"]


class TestBaselineWarnings:
    def test_complete_baseline_is_silent(self):
        assert baseline_warnings(_payload(a=1.0, b=2.0)) == []

    def test_missing_unit_and_workload_warn_loudly(self):
        baseline = {
            "metrics": {
                "a": {"value": 1.0, "workload": "synthetic"},  # no unit
                "b": {"value": 2.0, "unit": "x/s"},  # no workload
                "c": {"value": 3.0},  # neither
            }
        }
        warnings = baseline_warnings(baseline)
        assert len(warnings) == 3
        assert "'a'" in warnings[0] and "unit" in warnings[0]
        assert "'b'" in warnings[1] and "workload" in warnings[1]
        assert "'c'" in warnings[2] and "unit and workload" in warnings[2]
        assert all(line.startswith("warning:") for line in warnings)

    def test_empty_string_fields_count_as_missing(self):
        baseline = {"metrics": {"a": {"value": 1.0, "unit": "", "workload": "w"}}}
        assert len(baseline_warnings(baseline)) == 1

    def test_no_metrics_key_is_fine(self):
        assert baseline_warnings({}) == []


class TestRequiredGates:
    def test_present_on_both_sides_passes(self):
        fresh = _payload(fleet_events_per_s=100.0)
        baseline = _payload(fleet_events_per_s=90.0)
        assert gate_required(fresh, baseline, ("fleet_events_per_s",)) == []

    def test_missing_from_fresh_run_fails(self):
        problems = gate_required(
            _payload(other=1.0), _payload(gated=1.0, other=1.0), ("gated",)
        )
        assert len(problems) == 1
        assert "gated" in problems[0] and "missing from this run" in problems[0]

    def test_missing_from_baseline_fails(self):
        problems = gate_required(
            _payload(gated=1.0), _payload(other=1.0), ("gated",)
        )
        assert len(problems) == 1
        assert "committed baseline" in problems[0]

    def test_value_less_entry_counts_as_missing(self):
        fresh = {"metrics": {"gated": {"unit": "x/s"}}}
        assert gate_required(fresh, _payload(gated=1.0), ("gated",))

    def test_no_required_metrics_is_a_no_op(self):
        assert gate_required(_payload(a=1.0), _payload(b=2.0), ()) == []
