"""Table 2: features created for RM1's dataset within six months and
their lifecycle status six months later.

Paper: 10148 beta / 883 experimental / 1650 active / 1933 deprecated
out of 14614 proposals.
"""

from repro.analysis import render_table, simulate_feature_lifecycle
from repro.warehouse import TableSchema

from ._util import save_result

PAPER = {"beta": 10_148, "experimental": 883, "active": 1_650, "deprecated": 1_933}


def run_table2():
    schema = TableSchema("rm1_table")
    counts = simulate_feature_lifecycle(14_614, seed=2, schema=schema)
    return counts, schema


def test_table2_lifecycle(benchmark):
    counts, schema = benchmark(run_table2)
    measured = {
        "beta": counts.beta,
        "experimental": counts.experimental,
        "active": counts.active,
        "deprecated": counts.deprecated,
    }
    rows = [[k, measured[k], PAPER[k]] for k in PAPER] + [
        ["total", counts.total, 14_614]
    ]
    save_result(
        "table2_feature_lifecycle",
        render_table(["status", "measured", "paper"], rows,
                     title="Table 2 — RM1 feature proposals over 6 months"),
    )
    assert counts.total == 14_614
    for key, paper_value in PAPER.items():
        assert abs(measured[key] - paper_value) / paper_value < 0.12
    # Beta features are not logged: the schema's storage footprint is
    # only the non-beta features.
    logged = len(schema.logged_features())
    assert logged == counts.experimental + counts.active + counts.deprecated
