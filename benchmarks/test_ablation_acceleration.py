"""Ablation: transform acceleration placement and kernel batching (§7.2).

Reproduces the paper's three observations: per-op GPU amenability
varies hugely (SigridHash 11.9x vs Bucketize 1.3x), per-feature kernel
launches destroy GPU gains (~three orders of magnitude vs one combined
kernel), and the best placement varies across models.
"""

from repro.analysis import render_table
from repro.transforms import OpWorkload, batching_speedup, place_workloads

from ._util import save_result

# Per-model op mixes: features x elements per op, loosely shaped by
# each RM's transform intensity and sparse feature counts.
MODEL_MIXES = {
    "RM1": [
        OpWorkload("SigridHash", 600, 800.0),
        OpWorkload("NGram", 300, 1_600.0),
        OpWorkload("Cartesian", 100, 2_000.0),
        OpWorkload("Bucketize", 1_200, 25.0),
        OpWorkload("Logit", 1_200, 1.0),
    ],
    "RM2": [
        OpWorkload("SigridHash", 620, 800.0),
        OpWorkload("NGram", 150, 1_200.0),
        OpWorkload("MapId", 300, 600.0),
        OpWorkload("Bucketize", 1_100, 25.0),
    ],
    "RM3": [
        OpWorkload("SigridHash", 40, 500.0),
        OpWorkload("Onehot", 500, 1.0),
        OpWorkload("Clamp", 500, 1.0),
    ],
}


def run_study():
    results = {}
    for model_name, mix in MODEL_MIXES.items():
        batched = place_workloads(mix, batched_kernels=True)
        unbatched = place_workloads(mix, batched_kernels=False)
        results[model_name] = (batched, unbatched)
    return results


def test_ablation_acceleration(benchmark):
    results = benchmark(run_study)
    rows = []
    for model_name, (batched, unbatched) in results.items():
        gpu_ops = sum(1 for d in batched.devices().values() if d == "gpu")
        rows.append(
            [
                model_name,
                f"{batched.speedup_over_cpu():.2f}x",
                f"{unbatched.speedup_over_cpu():.2f}x",
                f"{gpu_ops}/{len(batched.decisions)}",
            ]
        )
    hash_batch_gain = batching_speedup(OpWorkload("SigridHash", 1_000, 600.0))
    rows.append(["SigridHash batching (1000 feats)", f"{hash_batch_gain:.0f}x", "-", "-"])
    save_result(
        "ablation_acceleration",
        render_table(
            ["workload", "speedup (batched kernels)", "speedup (per-feature)",
             "ops on GPU"],
            rows,
            title="Ablation — GPU placement and kernel batching for transforms",
        ),
    )
    for model_name, (batched, unbatched) in results.items():
        # Batched kernels never lose to per-feature launches.
        assert batched.total_cycles <= unbatched.total_cycles
        assert batched.speedup_over_cpu() >= 1.0
    # Placement differs across models ("the most efficient solution
    # varies heavily across models"): RM1's hash/ngram-heavy mix moves
    # ops to the GPU while RM3's tiny normalization mix stays on CPU.
    rm1_devices = results["RM1"][0].devices()
    rm3_devices = results["RM3"][0].devices()
    assert "gpu" in rm1_devices.values()
    assert "gpu" not in rm3_devices.values()
    speedups = [b.speedup_over_cpu() for b, _ in results.values()]
    assert max(speedups) > 1.5 * min(speedups)
    # Kernel batching is worth ~three orders of magnitude.
    assert hash_batch_gain > 700
