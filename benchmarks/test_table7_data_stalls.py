"""Table 7: data stalls when preprocessing runs on the trainer's CPUs.

Paper: 56% of GPU cycles stalled, 92% CPU utilization, 54% memory
bandwidth utilization for RM1 on a 2-socket, 8-V100 node.
"""

from repro.analysis import render_table
from repro.trainer import GpuDemand, V100_DEMAND_FACTOR, on_host_preprocessing_study
from repro.workloads import RM1, V100_TRAINER

from ._util import save_result


def run_table7():
    demand = GpuDemand(RM1, V100_DEMAND_FACTOR)
    return on_host_preprocessing_study(RM1, V100_TRAINER, demand)


def test_table7_data_stalls(benchmark):
    report = benchmark(run_table7)
    rows = [
        ["% GPU stall time", 100 * report.gpu_stall_fraction, 56],
        ["% CPU utilization", 100 * report.cpu_utilization, 92],
        ["% memory BW utilization", 100 * report.mem_bw_utilization, 54],
        ["supplied samples/s", report.supplied_samples_per_s, "-"],
        ["demanded samples/s", report.demanded_samples_per_s, "-"],
    ]
    save_result(
        "table7_data_stalls",
        render_table(["metric", "measured", "paper"], rows,
                     title="Table 7 — on-host preprocessing stalls (RM1, V100 node)"),
    )
    assert abs(report.gpu_stall_fraction - 0.56) < 0.03
    assert abs(report.cpu_utilization - 0.92) < 0.02
    assert abs(report.mem_bw_utilization - 0.54) < 0.05
    # The motivating claim: host CPUs cannot feed the GPUs.
    assert report.supplied_samples_per_s < report.demanded_samples_per_s
