"""Figure 6: compute demand of the top-10 models across five regions.

Paper: the balanced scheduler replicates every dataset into every
region; bin-packing would cut storage copies.
"""

import numpy as np

from repro.analysis import render_table
from repro.cluster import ModelDemand, Region, schedule_balanced, schedule_bin_packed
from repro.common.units import PB

from ._util import save_result


def build_inputs(seed=6):
    rng = np.random.default_rng(seed)
    # Ten models (A-J) with demand normalized to the smallest, like
    # the paper's Figure 6; dataset sizes loosely follow demand.
    demands = []
    for index, name in enumerate("ABCDEFGHIJ"):
        demand = float(20 * (10 - index) * rng.uniform(0.7, 1.3))
        demands.append(ModelDemand(name, demand, (1 + demand / 40) * PB))
    return demands


def run_figure6():
    demands = build_inputs()
    balanced_regions = [Region(f"R{i+1}", 4_000, 200 * PB) for i in range(5)]
    balanced = schedule_balanced(demands, balanced_regions)
    packed_regions = [Region(f"R{i+1}", 4_000, 200 * PB) for i in range(5)]
    packed = schedule_bin_packed(demands, packed_regions)
    return demands, balanced, packed


def test_fig6_regional_demand(benchmark):
    demands, balanced, packed = benchmark(run_figure6)
    model_names = [d.model_name for d in demands]
    region_names = [f"R{i+1}" for i in range(5)]
    matrix = balanced.demand_matrix(model_names, region_names)
    floor = min(d.peak_trainer_nodes for d in demands)
    rows = [
        [name] + [cell / floor for cell in row]
        for name, row in zip(model_names, matrix)
    ]
    save_result(
        "fig6_regions",
        render_table(
            ["model"] + region_names, rows,
            title=(
                "Figure 6 — demand by model x region, normalized to model J "
                f"(balanced: {balanced.total_dataset_copies} dataset copies; "
                f"bin-packed: {packed.total_dataset_copies})"
            ),
        ),
    )
    # Balanced policy: every model present in every region.
    assert all(all(cell > 0 for cell in row) for row in matrix)
    assert balanced.total_dataset_copies == 50
    # Bin-packing reduces dataset replication (Section 7.3).
    assert packed.total_dataset_copies < balanced.total_dataset_copies
    assert packed.total_storage_bytes < balanced.total_storage_bytes
