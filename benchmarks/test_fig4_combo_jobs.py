"""Figure 4: duration and status skew of 82 RM1 combo jobs.

Paper: jobs launch asynchronously within the combo window, run up to
>10 days, and many are killed or fail.
"""

import numpy as np

from repro.analysis import render_table
from repro.cluster import JobKind, JobStatus, generate_release_iteration

from ._util import save_result


def run_figure4():
    return generate_release_iteration("RM1", start_day=0.0, seed=4)


def test_fig4_combo_job_skew(benchmark):
    iteration = benchmark(run_figure4)
    combos = iteration.jobs_of_kind(JobKind.COMBO)
    durations = np.array([job.duration_days for job in combos])
    statuses = {
        status: sum(1 for job in combos if job.status is status)
        for status in JobStatus
    }
    rows = [
        ["combo jobs", len(combos)],
        ["p50 duration (days)", float(np.percentile(durations, 50))],
        ["p95 duration (days)", float(np.percentile(durations, 95))],
        ["max duration (days)", float(durations.max())],
        ["completed", statuses[JobStatus.COMPLETED]],
        ["killed", statuses[JobStatus.KILLED]],
        ["failed", statuses[JobStatus.FAILED]],
    ]
    save_result(
        "fig4_combo_jobs",
        render_table(["metric", "value"], rows,
                     title="Figure 4 — one RM1 release iteration's combo jobs"),
    )
    assert len(combos) == 82
    assert durations.max() > 10.0  # long-running tail
    assert iteration.combo_duration_skew() > 2.0  # heavy temporal skew
    assert statuses[JobStatus.KILLED] + statuses[JobStatus.FAILED] > 15
