"""Projection: the §6.1 3.5x demand growth against fleets and hosts.

Paper: "we project the online preprocessing throughput requirement to
increase by 3.5x within the next two years"; §7.1: trainers must
provision host resources for loading, e.g. ZionEX's 4x100 Gbps NICs.
"""

from repro.analysis import (
    project_demand_growth,
    render_table,
    trainer_host_headroom,
)
from repro.workloads import ALL_MODELS, C_V1, C_VSOTA, V100_TRAINER, ZIONEX_TRAINER

from ._util import save_result


def run_projection():
    fleet = {
        model.name: (
            project_demand_growth(model, C_V1),
            project_demand_growth(model, C_VSOTA),
        )
        for model in ALL_MODELS
    }
    hosts = {
        model.name: (
            trainer_host_headroom(model, V100_TRAINER, growth=3.5),
            trainer_host_headroom(model, ZIONEX_TRAINER, growth=3.5),
        )
        for model in ALL_MODELS
    }
    return fleet, hosts


def test_projection_growth(benchmark):
    fleet, hosts = benchmark(run_projection)
    rows = []
    for model in ALL_MODELS:
        on_v1, on_sota = fleet[model.name]
        v100, zionex = hosts[model.name]
        rows.append(
            [
                model.name,
                f"{on_v1.workers_per_trainer_now:.1f}",
                f"{on_v1.workers_per_trainer_grown:.1f}",
                f"{on_sota.workers_per_trainer_grown:.1f}",
                f"{100 * v100.utilization:.0f}%",
                f"{100 * zionex.utilization:.0f}%",
            ]
        )
    save_result(
        "projection_growth",
        render_table(
            ["model", "workers/trainer now (C-v1)", "at 3.5x (C-v1)",
             "at 3.5x (C-vSotA)", "V100 host load @3.5x", "ZionEX host load @3.5x"],
            rows,
            title="Projection — §6.1's 3.5x growth: fleet sizes and host headroom",
        ),
    )
    # Fleets triple and a half on fixed hardware; SotA nodes claw back.
    for model in ALL_MODELS:
        on_v1, on_sota = fleet[model.name]
        assert on_v1.workers_per_trainer_grown > 3 * on_v1.workers_per_trainer_now
        assert on_sota.workers_per_trainer_grown < on_v1.workers_per_trainer_grown
    # RM1's grown demand overloads the V100-era host but today's
    # demand fits both — the §7.1 provisioning story.
    assert hosts["RM1"][0].utilization > 1.0
    assert trainer_host_headroom(ALL_MODELS[0], ZIONEX_TRAINER).feasible
