"""Figure 9: DPP worker CPU / memory / memory-bandwidth utilization at
saturation, with the CPU split into transformation, extraction, misc.

Paper: RM1 is CPU + memory-bandwidth bound; RM3 is memory-capacity
bound (thread pool limited to avoid OOM).
"""

from repro.analysis import figure9_rows, render_table
from repro.dpp.analytical import per_sample_cost
from repro.workloads import ALL_MODELS, RM2

from ._util import save_result


def run_figure9():
    return figure9_rows()


def test_fig9_worker_utilization(benchmark):
    rows = benchmark(run_figure9)
    table = [
        [
            row.model_name,
            100 * row.cpu_transformation,
            100 * row.cpu_extraction,
            100 * row.cpu_misc,
            100 * row.mem_capacity,
            100 * row.mem_bw,
            row.bottleneck,
        ]
        for row in rows
    ]
    save_result(
        "fig9_worker_util",
        render_table(
            ["model", "CPU xform %", "CPU extract %", "CPU misc %",
             "mem cap %", "mem BW %", "bottleneck"],
            table,
            title="Figure 9 — DPP worker utilization at saturation (C-v1)",
        ),
    )
    by_name = {row.model_name: row for row in rows}
    # RM1: transformation dominates its CPU time; mem BW co-bound.
    assert by_name["RM1"].cpu_transformation > by_name["RM1"].cpu_extraction
    assert by_name["RM1"].mem_bw > 0.6
    # RM2: NIC-bound on C-v1 (Section 6.3).
    assert by_name["RM2"].bottleneck == "nic_rx"
    # RM3: memory capacity pressure limits the thread pool.
    assert by_name["RM3"].bottleneck == "memory_capacity"
    assert by_name["RM3"].mem_capacity > 0.5
    # Section 6.3's LLC-miss split for RM2 (50.4/24.9/16.4/4.7).
    shares = per_sample_cost(RM2).mem_shares()
    assert abs(shares["transformation"] - 0.504) < 0.04
    assert abs(shares["network_receive"] - 0.164) < 0.04
