"""Figure 2: dataset size and ingestion bandwidth growth over 2 years.

Paper: storage grew over 2x and bandwidth over 4x in two years.
"""

from repro.analysis import render_table, simulate_growth

from ._util import save_result


def run_figure2():
    return simulate_growth(months=24, seed=0)


def test_fig2_growth(benchmark):
    series = benchmark(run_figure2)
    rows = [
        [month, float(series.dataset_size[month]), float(series.ingestion_bandwidth[month])]
        for month in range(0, 24, 3)
    ]
    rows.append([23, float(series.dataset_size[-1]), float(series.ingestion_bandwidth[-1])])
    save_result(
        "fig2_growth",
        render_table(
            ["month", "dataset (norm.)", "bandwidth (norm.)"],
            rows,
            title=(
                "Figure 2 — growth over 24 months "
                f"(dataset {series.dataset_growth:.2f}x, "
                f"bandwidth {series.bandwidth_growth:.2f}x; paper: >2x, >4x)"
            ),
        ),
    )
    assert series.dataset_growth > 2.0
    assert series.bandwidth_growth > 4.0
