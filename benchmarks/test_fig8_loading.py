"""Figure 8: trainer-host CPU and memory-bandwidth utilization as the
tensor loading rate scales, with each model's demand marked.

Paper anchors: ~40% CPU and ~55% memory bandwidth at RM1's 16.5 GB/s
on the two-socket V100 node; production approaches NIC saturation.
"""

from repro.analysis import figure8_sweep, render_table
from repro.common.units import GB
from repro.trainer import loading_utilization
from repro.workloads import ALL_MODELS, V100_TRAINER

from ._util import save_result


def run_figure8():
    return figure8_sweep(V100_TRAINER, max_gbs=20.0, n_points=21)


def test_fig8_loading_sweep(benchmark):
    points = benchmark(run_figure8)
    rows = [
        [p.rate_gbs, 100 * p.cpu, 100 * p.mem_bw, 100 * p.nic_rx]
        for p in points[::4]
    ]
    for model in ALL_MODELS:
        report = loading_utilization(V100_TRAINER, model.trainer_bytes_per_s)
        rows.append(
            [f"{model.name} @ {model.trainer_gbs}", 100 * report.cpu,
             100 * report.mem_bw, 100 * report.nic_rx]
        )
    save_result(
        "fig8_loading",
        render_table(
            ["rate GB/s", "CPU %", "mem BW %", "NIC %"],
            rows,
            title="Figure 8 — host utilization vs tensor loading rate (V100 node)",
        ),
    )
    rm1 = loading_utilization(V100_TRAINER, 16.5 * GB)
    assert abs(rm1.cpu - 0.40) < 0.03
    assert abs(rm1.mem_bw - 0.55) < 0.03
    assert rm1.nic_rx > 0.6  # approaching NIC saturation
    # Utilization scales linearly with rate.
    assert points[20].cpu > points[10].cpu > points[1].cpu
