"""Fleet contention: aggregate DPP throughput under 1 vs N tenants.

The fleet-provisioning argument made quantitative: as concurrent jobs
multiply on one region, the shared Tectonic fabric saturates, per-job
throughput collapses toward its fair share, and aggregate throughput
plateaus at the fabric ceiling — storage must be provisioned for the
fleet, not the job.
"""

from repro.analysis import render_table
from repro.cluster.job import JobKind
from repro.fleet import (
    FleetConfig,
    FleetJobSpec,
    FleetSimulator,
    PoolConfig,
    StorageFabric,
)
from repro.workloads.models import RM1, RM2

from ._util import save_result

FLEET_SIZES = (1, 2, 4, 8, 16)


def make_jobs(n: int) -> list[FleetJobSpec]:
    jobs = []
    for i in range(n):
        model = RM1 if i % 2 == 0 else RM2
        demand = 2 * model.samples_per_s_per_trainer
        jobs.append(
            FleetJobSpec(
                job_id=i,
                model=model,
                kind=JobKind.EXPLORATORY,
                arrival_s=0.0,
                trainer_nodes=2,
                target_samples=1.5 * 3600 * demand,
            )
        )
    return jobs


def run_sweep():
    config = FleetConfig(
        fabric=StorageFabric(n_hdd_nodes=60, n_ssd_cache_nodes=4),
        n_trainer_nodes=64,
        pool=PoolConfig(max_workers=4_000),
    )
    results = {}
    for n in FLEET_SIZES:
        results[n] = FleetSimulator(config, make_jobs(n)).run()
    return config, results


def test_fleet_contention(benchmark):
    config, results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for n, report in results.items():
        rm1 = [
            o for o in report.finished_outcomes() if o.spec.model is RM1
        ]
        per_job = sum(o.achieved_samples_per_s for o in rm1) / len(rm1)
        rows.append(
            [
                n,
                f"{report.aggregate_samples_per_s / 1e6:.3f}",
                f"{per_job / 1e6:.3f}",
                f"{report.mean_slowdown:.2f}",
                f"{report.mean_storage_utilization:.0%}",
                f"{report.peak_storage_utilization:.0%}",
            ]
        )
    save_result(
        "fleet_contention",
        render_table(
            [
                "jobs",
                "aggregate Msamp/s",
                "RM1 per-job Msamp/s",
                "mean slowdown",
                "storage mean",
                "storage peak",
            ],
            rows,
            title="Fleet contention — shared storage under 1..16 concurrent jobs",
        ),
    )

    solo = results[1]
    crowded = results[max(FLEET_SIZES)]
    # Per-job throughput degrades monotonically-ish with tenancy…
    per_job = {
        n: sum(
            o.achieved_samples_per_s
            for o in r.finished_outcomes()
            if o.spec.model is RM1
        )
        / sum(1 for o in r.finished_outcomes() if o.spec.model is RM1)
        for n, r in results.items()
    }
    assert per_job[max(FLEET_SIZES)] < 0.5 * per_job[1]
    # …while aggregate throughput rises then plateaus at the fabric.
    assert crowded.aggregate_samples_per_s > solo.aggregate_samples_per_s
    assert crowded.peak_storage_utilization > 0.95
    # The broker never over-commits the fabric.
    assert all(
        s.granted_bytes_per_s <= config.fabric.total_bandwidth * (1 + 1e-6)
        for r in results.values()
        for s in r.samples
    )
