"""Table 10: compute-server generations and the per-core trends that
drive Section 6.3's projection (memory bandwidth per core shrinking,
NIC bandwidth per core growing → memory bandwidth becomes the DPP
bottleneck).
"""

from repro.analysis import render_table
from repro.dpp.analytical import worker_throughput
from repro.workloads import COMPUTE_GENERATIONS, RM2

from ._util import save_result


def run_table10():
    return [
        (spec, worker_throughput(RM2, spec)) for spec in COMPUTE_GENERATIONS
    ]


def test_table10_hardware_trends(benchmark):
    results = benchmark(run_table10)
    rows = []
    for spec, throughput in results:
        rows.append(
            [
                spec.name,
                spec.physical_cores,
                spec.nic_gbps,
                spec.memory_gb,
                spec.peak_mem_bw_gbs,
                spec.mem_bw_per_core_gbs,
                spec.nic_bw_per_core_gbps,
                throughput.bottleneck,
            ]
        )
    save_result(
        "table10_hardware",
        render_table(
            ["node", "cores", "NIC Gbps", "mem GB", "mem BW GB/s",
             "mem BW/core", "NIC BW/core", "RM2 bottleneck"],
            rows,
            title="Table 10 — compute server generations (RM2 bottleneck per gen)",
        ),
    )
    specs = [spec for spec, _ in results]
    v1, v2, v3, sota = specs
    # Per-core memory bandwidth shrinks across real generations.
    assert v1.mem_bw_per_core_gbs > v2.mem_bw_per_core_gbs > v3.mem_bw_per_core_gbs
    # Per-core NIC bandwidth grows to the SotA node.
    assert sota.nic_bw_per_core_gbps > v1.nic_bw_per_core_gbps
    # The §6.3 projection: RM2 flips from NIC-bound (C-v1) to
    # memory-bandwidth-bound (C-v2 onward).
    bottlenecks = {spec.name: t.bottleneck for spec, t in results}
    assert bottlenecks["C-v1"] == "nic_rx"
    assert bottlenecks["C-v2"] == "mem_bw"
