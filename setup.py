"""Setuptools entry point; all metadata lives in pyproject.toml.

Normal environments:      pip install -e .
Offline / no `wheel` pkg: python setup.py develop

Either replaces the `PYTHONPATH=src` requirement with a real editable
install of the `repro` package.
"""

from setuptools import setup

setup()
